// Page-mapped flash translation layer with out-of-place updates, on-demand
// garbage collection, dynamic wear leveling (new frontiers come from the
// least-worn free blocks) and static wear leveling (cold blocks are recycled
// into the most-worn free blocks once the in-device erase spread grows).
//
// This is the FlashSim-equivalent substrate: every Chameleon wear number
// (erase counts, write amplification, GC-inflated write latency) is produced
// by this layer.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/binary_io.hpp"
#include "common/faults.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "flashsim/ssd_config.hpp"
#include "flashsim/ssd_stats.hpp"

namespace chameleon::flashsim {

/// Outcome of a single host page write, including any GC work it triggered.
struct WriteResult {
  Nanos latency = 0;          ///< service time incl. GC stall attributed here
  std::uint32_t gc_erases = 0;
  std::uint32_t gc_copies = 0;
};

/// Thrown by writes once block retirements have consumed the spare capacity
/// needed to keep the logical space writable (device end-of-life).
struct DeviceWornOut : std::runtime_error {
  DeviceWornOut() : std::runtime_error("flash device worn out") {}
};

/// Injected uncorrectable bit error surfacing from a page read (the device's
/// UBER). Retryable: the caller should fall back to another replica or an
/// EC reconstruction.
struct UncorrectableReadError : TransientFault {
  UncorrectableReadError() : TransientFault("uncorrectable flash read error") {}
};

/// Injected transient program failure. Thrown before any FTL state changes,
/// so a retried write sees the device exactly as it was.
struct TransientWriteError : TransientFault {
  TransientWriteError() : TransientFault("transient flash program failure") {}
};

/// Deterministic fault-injection knobs (armed by the fault subsystem).
/// Probabilities are evaluated per page operation against a seeded RNG, so
/// a fixed op sequence yields a byte-identical fault sequence.
struct DeviceFaultPlan {
  double read_error_prob = 0.0;   ///< per page-read (derive from UBER x bits)
  double write_error_prob = 0.0;  ///< per page-program
};

/// Multi-stream hint: callers that know a page's update temperature can
/// direct it to a separate write frontier, so hot and cold data do not mix
/// within blocks (mixing is what inflates victim utilization and WA).
enum class StreamHint : std::uint8_t { kDefault = 0, kHot, kCold };

class Ftl {
 public:
  explicit Ftl(const SsdConfig& config);

  Ftl(const Ftl&) = delete;
  Ftl& operator=(const Ftl&) = delete;
  Ftl(Ftl&&) = default;

  /// Program one logical page (out-of-place). `lpn` must be below
  /// config().logical_pages(). Runs GC synchronously if the free pool is low;
  /// that stall is included in the returned latency. `hint` selects the
  /// write stream (frontier) the page is appended to.
  WriteResult write(Lpn lpn, StreamHint hint = StreamHint::kDefault);

  /// Read one logical page. Unmapped pages still cost a read (the device
  /// returns zeroes); mapped state is observable via is_mapped().
  Nanos read(Lpn lpn);

  /// Invalidate a logical page without writing (object deletion / remap).
  void trim(Lpn lpn);

  /// Host-managed background GC (the open-channel SSD capability the paper
  /// assumes): reclaim victims off the write path until the free pool holds
  /// `free_target_fraction` of all blocks or `max_victims` rounds ran.
  /// Returns the device-busy time consumed (not charged to any write).
  Nanos background_gc(std::uint32_t max_victims, double free_target_fraction);

  bool is_mapped(Lpn lpn) const;

  /// Arm deterministic read/write error injection. Faults fire at the very
  /// top of read()/write(), before any FTL state mutation, so a failed op
  /// leaves the device byte-identical to its pre-op state.
  void arm_faults(const DeviceFaultPlan& plan, std::uint64_t seed) {
    faults_ = plan;
    fault_rng_ = Xoshiro256(seed);
    faults_armed_ = plan.read_error_prob > 0.0 || plan.write_error_prob > 0.0;
  }
  void disarm_faults() { faults_armed_ = false; }
  bool faults_armed() const { return faults_armed_; }

  const SsdConfig& config() const { return config_; }
  const SsdStats& stats() const { return stats_; }

  std::uint64_t total_erases() const { return stats_.block_erases; }
  std::uint32_t free_block_count() const {
    return static_cast<std::uint32_t>(free_blocks_.size());
  }
  std::uint64_t valid_page_count() const { return valid_pages_; }

  /// Physical-space utilization: valid pages / physical pages.
  double physical_utilization() const {
    return static_cast<double>(valid_pages_) /
           static_cast<double>(config_.physical_pages());
  }

  std::uint32_t block_erase_count(BlockId b) const {
    return blocks_[b].erase_count;
  }
  std::uint32_t min_block_erase() const;
  std::uint32_t max_block_erase() const;

  /// Blocks retired after reaching max_pe_cycles (0 when wear-out disabled).
  std::uint32_t retired_blocks() const { return retired_blocks_; }
  /// True once retirements leave too few usable blocks to serve the logical
  /// space; subsequent writes throw DeviceWornOut.
  bool is_worn_out() const;

  /// Exhaustive structural invariant check; test-only (O(pages)).
  void check_invariants() const;

  /// Bit-level serialization of the whole device: mapping tables, per-block
  /// metadata, free pool, GC buckets, frontiers, and cumulative stats.
  /// Flash is non-volatile — a host crash loses none of this — so recovery
  /// restores it exactly instead of re-deriving it by replay (replay-time GC
  /// would diverge from the original erase history). The transient in_gc_
  /// flag and fault-injection arming are deliberately not persisted.
  void save(BinaryWriter& out) const;

  /// Inverse of save(), into an Ftl constructed with the SAME SsdConfig.
  /// Throws std::runtime_error on geometry mismatch or truncated input.
  void restore(BinaryReader& in);

 private:
  enum class BlockState : std::uint8_t { kFree, kOpen, kFull, kRetired };
  /// Which write frontier a page is appended to. Host streams (default /
  /// hot / cold), GC copies and static-WL relocations each get their own
  /// frontier so differently-tempered data does not share blocks.
  enum class Frontier : std::uint8_t {
    kHost = 0,
    kHostHot = 1,
    kHostCold = 2,
    kGc = 3,
    kWl = 4,
  };
  static constexpr std::size_t kFrontierCount = 5;

  struct Block {
    std::uint32_t erase_count = 0;
    std::uint64_t alloc_seq = 0;     ///< age proxy for cost-benefit GC
    std::uint16_t write_ptr = 0;     ///< next free page slot
    std::uint16_t valid_count = 0;
    BlockState state = BlockState::kFree;
    // Intrusive doubly-linked list node for the valid-count bucket the block
    // sits in while kFull; -1 when not linked.
    std::int32_t bucket_prev = -1;
    std::int32_t bucket_next = -1;
  };

  Ppn block_first_ppn(BlockId b) const {
    return b * config_.pages_per_block;
  }
  BlockId block_of(Ppn p) const { return p / config_.pages_per_block; }

  void invalidate_ppn(Ppn ppn);
  /// Append `lpn` to the given frontier; allocates a new frontier block when
  /// needed. Returns program latency (no GC logic here).
  Nanos program_page(Lpn lpn, Frontier frontier);
  /// Pop a block from the free pool: min-erase for host/GC frontiers
  /// (dynamic WL), max-erase for the static-WL frontier.
  BlockId allocate_free_block(Frontier frontier);
  void retire_frontier_block(BlockId b);

  /// Run one GC round: pick a victim, relocate its valid pages, erase it.
  /// Returns latency of the round; 0 if no victim was available.
  Nanos gc_once();
  Nanos relocate_and_erase(BlockId victim, Frontier dest);
  BlockId choose_victim() const;
  BlockId choose_victim_greedy(bool wear_tiebreak) const;
  BlockId choose_victim_cost_benefit() const;
  Nanos maybe_static_wl();

  void bucket_insert(BlockId b);
  void bucket_remove(BlockId b);
  void bucket_move(BlockId b, std::uint16_t old_valid);

  SsdConfig config_;
  SsdStats stats_;

  std::vector<Ppn> l2p_;  ///< logical -> physical (kInvalidPpn if unmapped)
  std::vector<Lpn> p2l_;  ///< physical -> logical (kInvalidLpn if invalid)
  std::vector<Block> blocks_;

  /// Free pool ordered by (erase_count, block id): supports both min-erase
  /// and max-erase extraction deterministically.
  std::set<std::pair<std::uint32_t, BlockId>> free_blocks_;

  /// Bucket heads: full blocks indexed by valid count (0..pages_per_block).
  std::vector<std::int32_t> bucket_heads_;
  std::uint32_t min_valid_hint_ = 0;  ///< lowest possibly-non-empty bucket

  BlockId frontier_[kFrontierCount] = {kInvalidBlock, kInvalidBlock,
                                       kInvalidBlock, kInvalidBlock,
                                       kInvalidBlock};
  std::uint64_t alloc_seq_ = 0;
  std::uint64_t valid_pages_ = 0;
  std::uint32_t retired_blocks_ = 0;
  bool in_gc_ = false;  ///< guards against recursive GC from relocation

  DeviceFaultPlan faults_;
  Xoshiro256 fault_rng_{0};
  bool faults_armed_ = false;
};

}  // namespace chameleon::flashsim
