// Device geometry and timing parameters for the simulated SSD.
// Defaults reproduce Table II of the paper exactly: 4KB pages, 256KB blocks,
// 25us read / 200us program / 1.5ms erase, 15% over-provisioned space.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/types.hpp"

namespace chameleon::flashsim {

/// Victim-block selection policy used by garbage collection.
enum class GcVictimPolicy : std::uint8_t {
  kGreedy,       ///< fewest valid pages (paper/FlashSim default)
  kCostBenefit,  ///< maximize (1-u)/(2u) * age (Rosenblum-style)
  kWearAware,    ///< greedy valid count, tie-break on lowest erase count
};

struct SsdConfig {
  std::uint32_t page_size_bytes = 4096;
  std::uint32_t pages_per_block = 64;  ///< 64 * 4KB = 256KB blocks
  std::uint32_t block_count = 1024;
  double over_provision = 0.15;  ///< fraction of physical space hidden from host

  Nanos read_latency = 25 * kMicrosecond;
  Nanos write_latency = 200 * kMicrosecond;
  Nanos erase_latency = 1'500 * kMicrosecond;

  /// GC starts when the free-block pool drops below this fraction of blocks.
  double gc_low_watermark = 0.05;
  GcVictimPolicy gc_policy = GcVictimPolicy::kGreedy;

  /// Static wear leveling: relocate cold blocks once the in-device erase
  /// spread (max - min over blocks) exceeds this many cycles. 0 disables.
  std::uint32_t static_wl_delta = 96;

  /// Independent flash channels: pages of one multi-page operation are
  /// striped across channels and proceed in parallel (the operation's
  /// latency is the busiest channel's lane). 1 = fully serial device.
  std::uint32_t channels = 1;

  /// Endurance limit: a block that reaches this many P/E cycles is retired
  /// as a bad block (typical MLC NAND: ~3000). 0 disables wear-out, which
  /// is the default for the paper's experiments — they measure erase
  /// *counts*, not device death. The lifetime analysis bench enables it.
  std::uint32_t max_pe_cycles = 0;

  /// Number of physical pages.
  std::uint64_t physical_pages() const {
    return static_cast<std::uint64_t>(block_count) * pages_per_block;
  }

  /// Host-visible logical pages (physical minus over-provisioned space).
  std::uint32_t logical_pages() const {
    const auto usable_blocks = static_cast<std::uint32_t>(
        static_cast<double>(block_count) * (1.0 - over_provision));
    return usable_blocks * pages_per_block;
  }

  std::uint64_t logical_bytes() const {
    return static_cast<std::uint64_t>(logical_pages()) * page_size_bytes;
  }

  /// Free-block count at/below which GC runs.
  std::uint32_t gc_low_blocks() const {
    const auto b = static_cast<std::uint32_t>(
        static_cast<double>(block_count) * gc_low_watermark);
    return b < 2 ? 2 : b;
  }

  void validate() const {
    if (pages_per_block == 0 || block_count == 0 || page_size_bytes == 0) {
      throw std::invalid_argument("SsdConfig: zero geometry");
    }
    if (channels == 0) {
      throw std::invalid_argument("SsdConfig: channels must be >= 1");
    }
    if (over_provision <= 0.0 || over_provision >= 0.9) {
      throw std::invalid_argument("SsdConfig: over_provision out of (0, 0.9)");
    }
    if (block_count < 8 || gc_low_blocks() >= block_count / 2) {
      throw std::invalid_argument("SsdConfig: too few blocks for GC watermark");
    }
  }

  /// Convenience: smallest config whose logical space holds `bytes` at the
  /// given target utilization, keeping the default 15% over-provisioning.
  static SsdConfig sized_for(std::uint64_t bytes, double target_utilization);
};

}  // namespace chameleon::flashsim
