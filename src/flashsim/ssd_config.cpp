#include "flashsim/ssd_config.hpp"

#include <cmath>

namespace chameleon::flashsim {

SsdConfig SsdConfig::sized_for(std::uint64_t bytes, double target_utilization) {
  if (target_utilization <= 0.0 || target_utilization > 0.95) {
    throw std::invalid_argument("sized_for: target_utilization out of (0,0.95]");
  }
  SsdConfig cfg;
  const double logical_bytes_needed =
      static_cast<double>(bytes) / target_utilization;
  const double block_bytes =
      static_cast<double>(cfg.page_size_bytes) * cfg.pages_per_block;
  const double usable_blocks = logical_bytes_needed / block_bytes;
  const double physical_blocks = usable_blocks / (1.0 - cfg.over_provision);
  cfg.block_count =
      static_cast<std::uint32_t>(std::ceil(physical_blocks)) + 1;
  // Keep a sane floor so the GC watermark math works for tiny experiments.
  if (cfg.block_count < 64) cfg.block_count = 64;
  cfg.validate();
  return cfg;
}

}  // namespace chameleon::flashsim
