// Object store layered on the FTL, mirroring the paper's "local log on top
// of the SSD simulator": object writes are appended (out-of-place at the
// flash level), overwrites invalidate the previous version, and removals
// trim pages without any write cost — the property EWO exploits.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "flashsim/ftl.hpp"

namespace chameleon::flashsim {

/// Result of an object-granularity operation.
struct ObjectOpResult {
  Nanos latency = 0;
  std::uint32_t pages = 0;
};

/// Physical half of a write: the logical bookkeeping (extent allocation,
/// free-list recycling, stored-page accounting) already happened when the
/// plan was made; executing it performs only FTL work. Lpns are copied into
/// the plan because the extent buffer may be freed by a later logical op
/// before a shard thread executes the plan.
struct WritePlan {
  std::vector<Lpn> trims;  ///< pages released by a resize, trimmed first
  std::vector<Lpn> lpns;   ///< pages to program, in extent order
  std::uint32_t pages = 0;
};

/// Physical half of a read: the lpns to touch.
struct ReadPlan {
  std::vector<Lpn> lpns;
  std::uint32_t pages = 0;
};

/// Physical half of a removal: pages to trim (no latency accounting).
struct TrimPlan {
  std::vector<Lpn> trims;
  std::uint32_t pages = 0;    ///< pages released
  std::size_t objects = 0;    ///< objects dropped
};

class LocalLog {
 public:
  explicit LocalLog(const SsdConfig& config);

  LocalLog(const LocalLog&) = delete;
  LocalLog& operator=(const LocalLog&) = delete;
  LocalLog(LocalLog&&) = default;

  /// Write (create or overwrite) an object occupying `bytes`. An overwrite
  /// that changes size releases the old pages first. Returns the summed
  /// device latency of all page programs (including GC stalls). `hint`
  /// selects the multi-stream frontier (hot/cold separation).
  ObjectOpResult write_object(ObjectId oid, std::uint64_t bytes,
                              StreamHint hint = StreamHint::kDefault);

  /// Read a whole object. Unknown objects throw std::out_of_range.
  ObjectOpResult read_object(ObjectId oid);

  /// Drop an object: trims all its pages (metadata-only, no flash writes).
  /// Returns the number of pages released; 0 if the object was absent.
  std::uint32_t remove_object(ObjectId oid);

  /// Drop every object (device wipe / re-provisioning). Block erase counts
  /// are preserved — wear history belongs to the physical flash.
  std::size_t remove_all_objects();

  // --- logical-plan / physical-execute split -------------------------------
  // The paired plan_*/execute_* methods are the exact decomposition of the
  // three operations above: plan_X applies every logical effect immediately
  // (so coordinator-visible state such as stored_pages()/has_object() is
  // up to date the moment the plan exists) and execute_X performs only FTL
  // work. write_object(o) == execute_write(plan_write(o)) etc.; the classic
  // entry points are implemented as exactly that composition, so sequential
  // and deferred modes share one logic path. Plans against one device must
  // be executed in the order they were made.

  WritePlan plan_write(ObjectId oid, std::uint64_t bytes);
  Nanos execute_write(const WritePlan& plan,
                      StreamHint hint = StreamHint::kDefault);

  ReadPlan plan_read(ObjectId oid) const;  ///< throws like read_object
  Nanos execute_read(const ReadPlan& plan);

  TrimPlan plan_remove(ObjectId oid);
  TrimPlan plan_remove_all();
  void execute_trims(const TrimPlan& plan);

  bool has_object(ObjectId oid) const { return extents_.contains(oid); }
  std::uint32_t object_pages(ObjectId oid) const;
  std::uint64_t stored_pages() const { return stored_pages_; }
  std::size_t object_count() const { return extents_.size(); }

  /// Fraction of host-visible logical space currently allocated to objects.
  double logical_utilization() const {
    return static_cast<double>(stored_pages_) /
           static_cast<double>(ftl_.config().logical_pages());
  }

  std::uint32_t pages_for_bytes(std::uint64_t bytes) const;

  const Ftl& ftl() const { return ftl_; }
  Ftl& ftl() { return ftl_; }
  const SsdStats& stats() const { return ftl_.stats(); }

  /// Serialize device + object-log state (includes Ftl::save). Extents are
  /// written sorted by object id so the byte stream is deterministic
  /// regardless of hash-map iteration order.
  void save(BinaryWriter& out) const;

  /// Inverse of save(), into a LocalLog constructed with the SAME SsdConfig.
  /// Replaces all object state; throws std::runtime_error on bad input.
  void restore(BinaryReader& in);

 private:
  Lpn allocate_lpn();
  /// Logical half of releasing a page: back onto the free list. The physical
  /// trim happens when the owning plan executes.
  void recycle_lpn(Lpn lpn) { free_lpns_.push_back(lpn); }
  /// Aggregate per-page latencies across the device's channels.
  Nanos lane_parallel(const std::vector<Nanos>& page_latencies) const;

  Ftl ftl_;
  std::unordered_map<ObjectId, std::vector<Lpn>> extents_;
  std::vector<Lpn> free_lpns_;  ///< recycled logical pages (LIFO)
  Lpn next_fresh_lpn_ = 0;
  std::uint64_t stored_pages_ = 0;
};

}  // namespace chameleon::flashsim
