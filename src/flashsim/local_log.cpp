#include "flashsim/local_log.hpp"

#include <algorithm>
#include <stdexcept>

namespace chameleon::flashsim {

LocalLog::LocalLog(const SsdConfig& config) : ftl_(config) {
  free_lpns_.reserve(256);
}

std::uint32_t LocalLog::pages_for_bytes(std::uint64_t bytes) const {
  const std::uint64_t page = ftl_.config().page_size_bytes;
  const std::uint64_t pages = (bytes + page - 1) / page;
  return pages == 0 ? 1u : static_cast<std::uint32_t>(pages);
}

Lpn LocalLog::allocate_lpn() {
  if (!free_lpns_.empty()) {
    const Lpn lpn = free_lpns_.back();
    free_lpns_.pop_back();
    return lpn;
  }
  if (next_fresh_lpn_ >= ftl_.config().logical_pages()) {
    throw std::runtime_error(
        "LocalLog: logical capacity exhausted (device sized too small for "
        "the stored dataset)");
  }
  return next_fresh_lpn_++;
}

Nanos LocalLog::lane_parallel(const std::vector<Nanos>& page_latencies) const {
  // Pages stripe round-robin across channels; each channel's lane runs
  // serially, lanes run in parallel -> the operation completes when the
  // busiest lane does.
  const std::uint32_t channels = ftl_.config().channels;
  if (channels <= 1) {
    Nanos sum = 0;
    for (const Nanos l : page_latencies) sum += l;
    return sum;
  }
  std::vector<Nanos> lanes(channels, 0);
  for (std::size_t i = 0; i < page_latencies.size(); ++i) {
    lanes[i % channels] += page_latencies[i];
  }
  Nanos max_lane = 0;
  for (const Nanos l : lanes) max_lane = std::max(max_lane, l);
  return max_lane;
}

WritePlan LocalLog::plan_write(ObjectId oid, std::uint64_t bytes) {
  const std::uint32_t pages = pages_for_bytes(bytes);
  WritePlan plan;
  plan.pages = pages;

  auto [it, inserted] = extents_.try_emplace(oid);
  std::vector<Lpn>& extent = it->second;

  if (!inserted && extent.size() != pages) {
    // Size change: out-of-place at the object layer too. Trims execute in
    // release order, before the programs, exactly as the sequential path
    // interleaved them.
    for (const Lpn lpn : extent) {
      plan.trims.push_back(lpn);
      recycle_lpn(lpn);
    }
    stored_pages_ -= extent.size();
    extent.clear();
  }
  if (extent.empty()) {
    extent.reserve(pages);
    for (std::uint32_t i = 0; i < pages; ++i) extent.push_back(allocate_lpn());
    stored_pages_ += pages;
  }
  plan.lpns = extent;  // copy: the extent may be reallocated or freed by a
                       // later logical op before this plan executes
  return plan;
}

Nanos LocalLog::execute_write(const WritePlan& plan, StreamHint hint) {
  for (const Lpn lpn : plan.trims) ftl_.trim(lpn);
  std::vector<Nanos> page_latencies;
  page_latencies.reserve(plan.lpns.size());
  for (const Lpn lpn : plan.lpns) {
    page_latencies.push_back(ftl_.write(lpn, hint).latency);
  }
  return lane_parallel(page_latencies);
}

ReadPlan LocalLog::plan_read(ObjectId oid) const {
  const auto it = extents_.find(oid);
  if (it == extents_.end()) {
    throw std::out_of_range("LocalLog::read_object: unknown object");
  }
  ReadPlan plan;
  plan.pages = static_cast<std::uint32_t>(it->second.size());
  plan.lpns = it->second;
  return plan;
}

Nanos LocalLog::execute_read(const ReadPlan& plan) {
  std::vector<Nanos> page_latencies;
  page_latencies.reserve(plan.lpns.size());
  for (const Lpn lpn : plan.lpns) {
    page_latencies.push_back(ftl_.read(lpn));
  }
  return lane_parallel(page_latencies);
}

TrimPlan LocalLog::plan_remove(ObjectId oid) {
  TrimPlan plan;
  const auto it = extents_.find(oid);
  if (it == extents_.end()) return plan;
  plan.pages = static_cast<std::uint32_t>(it->second.size());
  plan.objects = 1;
  plan.trims = std::move(it->second);
  for (const Lpn lpn : plan.trims) recycle_lpn(lpn);
  stored_pages_ -= plan.pages;
  extents_.erase(it);
  return plan;
}

TrimPlan LocalLog::plan_remove_all() {
  TrimPlan plan;
  plan.objects = extents_.size();
  for (auto& [oid, extent] : extents_) {
    for (const Lpn lpn : extent) {
      plan.trims.push_back(lpn);
      recycle_lpn(lpn);
    }
  }
  plan.pages = static_cast<std::uint32_t>(plan.trims.size());
  stored_pages_ = 0;
  extents_.clear();
  return plan;
}

void LocalLog::execute_trims(const TrimPlan& plan) {
  for (const Lpn lpn : plan.trims) ftl_.trim(lpn);
}

ObjectOpResult LocalLog::write_object(ObjectId oid, std::uint64_t bytes,
                                      StreamHint hint) {
  const WritePlan plan = plan_write(oid, bytes);
  ObjectOpResult result;
  result.pages = plan.pages;
  result.latency = execute_write(plan, hint);
  return result;
}

ObjectOpResult LocalLog::read_object(ObjectId oid) {
  const ReadPlan plan = plan_read(oid);
  ObjectOpResult result;
  result.pages = plan.pages;
  result.latency = execute_read(plan);
  return result;
}

std::uint32_t LocalLog::remove_object(ObjectId oid) {
  const TrimPlan plan = plan_remove(oid);
  execute_trims(plan);
  return plan.pages;
}

std::size_t LocalLog::remove_all_objects() {
  const TrimPlan plan = plan_remove_all();
  execute_trims(plan);
  return plan.objects;
}

void LocalLog::save(BinaryWriter& out) const {
  ftl_.save(out);
  std::vector<ObjectId> oids;
  oids.reserve(extents_.size());
  for (const auto& [oid, extent] : extents_) oids.push_back(oid);
  std::sort(oids.begin(), oids.end());
  out.u64(oids.size());
  for (const ObjectId oid : oids) {
    const auto& extent = extents_.at(oid);
    out.u64(oid);
    out.u32(static_cast<std::uint32_t>(extent.size()));
    for (const Lpn lpn : extent) out.u32(lpn);
  }
  // The free list is LIFO: order is behavior (which lpn the next write
  // gets), so it round-trips verbatim.
  out.u64(free_lpns_.size());
  for (const Lpn lpn : free_lpns_) out.u32(lpn);
  out.u32(next_fresh_lpn_);
  out.u64(stored_pages_);
}

void LocalLog::restore(BinaryReader& in) {
  ftl_.restore(in);
  const std::uint64_t logical_pages = ftl_.config().logical_pages();
  extents_.clear();
  const std::uint64_t objects = in.u64();
  if (objects > logical_pages) {
    throw std::runtime_error("LocalLog::restore: object count out of range");
  }
  extents_.reserve(objects);
  for (std::uint64_t i = 0; i < objects; ++i) {
    const ObjectId oid = in.u64();
    const std::uint32_t pages = in.u32();
    if (pages > logical_pages) {
      throw std::runtime_error("LocalLog::restore: extent larger than device");
    }
    std::vector<Lpn> extent;
    extent.reserve(pages);
    for (std::uint32_t p = 0; p < pages; ++p) extent.push_back(in.u32());
    if (!extents_.emplace(oid, std::move(extent)).second) {
      throw std::runtime_error("LocalLog::restore: duplicate object id");
    }
  }
  const std::uint64_t free_count = in.u64();
  if (free_count > logical_pages) {
    throw std::runtime_error("LocalLog::restore: free list out of range");
  }
  free_lpns_.clear();
  free_lpns_.reserve(free_count);
  for (std::uint64_t i = 0; i < free_count; ++i) {
    free_lpns_.push_back(in.u32());
  }
  next_fresh_lpn_ = in.u32();
  stored_pages_ = in.u64();
}

std::uint32_t LocalLog::object_pages(ObjectId oid) const {
  const auto it = extents_.find(oid);
  return it == extents_.end() ? 0
                              : static_cast<std::uint32_t>(it->second.size());
}

}  // namespace chameleon::flashsim
