#include "flashsim/local_log.hpp"

#include <algorithm>
#include <stdexcept>

namespace chameleon::flashsim {

LocalLog::LocalLog(const SsdConfig& config) : ftl_(config) {
  free_lpns_.reserve(256);
}

std::uint32_t LocalLog::pages_for_bytes(std::uint64_t bytes) const {
  const std::uint64_t page = ftl_.config().page_size_bytes;
  const std::uint64_t pages = (bytes + page - 1) / page;
  return pages == 0 ? 1u : static_cast<std::uint32_t>(pages);
}

Lpn LocalLog::allocate_lpn() {
  if (!free_lpns_.empty()) {
    const Lpn lpn = free_lpns_.back();
    free_lpns_.pop_back();
    return lpn;
  }
  if (next_fresh_lpn_ >= ftl_.config().logical_pages()) {
    throw std::runtime_error(
        "LocalLog: logical capacity exhausted (device sized too small for "
        "the stored dataset)");
  }
  return next_fresh_lpn_++;
}

void LocalLog::release_lpn(Lpn lpn) {
  ftl_.trim(lpn);
  free_lpns_.push_back(lpn);
}

Nanos LocalLog::lane_parallel(const std::vector<Nanos>& page_latencies) const {
  // Pages stripe round-robin across channels; each channel's lane runs
  // serially, lanes run in parallel -> the operation completes when the
  // busiest lane does.
  const std::uint32_t channels = ftl_.config().channels;
  if (channels <= 1) {
    Nanos sum = 0;
    for (const Nanos l : page_latencies) sum += l;
    return sum;
  }
  std::vector<Nanos> lanes(channels, 0);
  for (std::size_t i = 0; i < page_latencies.size(); ++i) {
    lanes[i % channels] += page_latencies[i];
  }
  Nanos max_lane = 0;
  for (const Nanos l : lanes) max_lane = std::max(max_lane, l);
  return max_lane;
}

ObjectOpResult LocalLog::write_object(ObjectId oid, std::uint64_t bytes,
                                      StreamHint hint) {
  const std::uint32_t pages = pages_for_bytes(bytes);
  ObjectOpResult result;
  result.pages = pages;

  auto [it, inserted] = extents_.try_emplace(oid);
  std::vector<Lpn>& extent = it->second;

  if (!inserted && extent.size() != pages) {
    // Size change: out-of-place at the object layer too.
    for (const Lpn lpn : extent) release_lpn(lpn);
    stored_pages_ -= extent.size();
    extent.clear();
  }
  if (extent.empty()) {
    extent.reserve(pages);
    for (std::uint32_t i = 0; i < pages; ++i) extent.push_back(allocate_lpn());
    stored_pages_ += pages;
  }
  std::vector<Nanos> page_latencies;
  page_latencies.reserve(extent.size());
  for (const Lpn lpn : extent) {
    page_latencies.push_back(ftl_.write(lpn, hint).latency);
  }
  result.latency = lane_parallel(page_latencies);
  return result;
}

ObjectOpResult LocalLog::read_object(ObjectId oid) {
  const auto it = extents_.find(oid);
  if (it == extents_.end()) {
    throw std::out_of_range("LocalLog::read_object: unknown object");
  }
  ObjectOpResult result;
  result.pages = static_cast<std::uint32_t>(it->second.size());
  std::vector<Nanos> page_latencies;
  page_latencies.reserve(it->second.size());
  for (const Lpn lpn : it->second) {
    page_latencies.push_back(ftl_.read(lpn));
  }
  result.latency = lane_parallel(page_latencies);
  return result;
}

std::uint32_t LocalLog::remove_object(ObjectId oid) {
  const auto it = extents_.find(oid);
  if (it == extents_.end()) return 0;
  const auto pages = static_cast<std::uint32_t>(it->second.size());
  for (const Lpn lpn : it->second) release_lpn(lpn);
  stored_pages_ -= pages;
  extents_.erase(it);
  return pages;
}

std::size_t LocalLog::remove_all_objects() {
  const std::size_t count = extents_.size();
  for (auto& [oid, extent] : extents_) {
    for (const Lpn lpn : extent) release_lpn(lpn);
  }
  stored_pages_ = 0;
  extents_.clear();
  return count;
}

std::uint32_t LocalLog::object_pages(ObjectId oid) const {
  const auto it = extents_.find(oid);
  return it == extents_.end() ? 0
                              : static_cast<std::uint32_t>(it->second.size());
}

}  // namespace chameleon::flashsim
