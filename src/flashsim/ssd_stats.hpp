// Cumulative device counters. Monitors compute per-epoch deltas by
// snapshotting these; nothing here is reset during a run.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace chameleon::flashsim {

struct SsdStats {
  std::uint64_t host_page_writes = 0;  ///< pages written on behalf of the host
  std::uint64_t gc_page_copies = 0;    ///< valid pages relocated by GC
  std::uint64_t wl_page_copies = 0;    ///< valid pages relocated by static WL
  std::uint64_t page_reads = 0;
  std::uint64_t page_trims = 0;
  std::uint64_t block_erases = 0;   ///< total erase operations (wear metric)
  std::uint64_t gc_invocations = 0; ///< victim selections (GC + static WL)

  /// Sum over victims of their valid-page utilization at collection time;
  /// divide by gc_invocations for the mean victim utilization "mu" of Eq 2.
  double victim_utilization_sum = 0.0;

  Nanos total_write_latency = 0;  ///< host write latency incl. GC stalls
  Nanos total_read_latency = 0;
  std::uint64_t write_ops = 0;  ///< host write operations (page granularity)
  std::uint64_t read_ops = 0;

  /// Write amplification: total pages programmed / host pages programmed.
  double write_amplification() const {
    return host_page_writes == 0
               ? 1.0
               : static_cast<double>(host_page_writes + gc_page_copies +
                                     wl_page_copies) /
                     static_cast<double>(host_page_writes);
  }

  double avg_victim_utilization() const {
    return gc_invocations == 0
               ? 0.0
               : victim_utilization_sum / static_cast<double>(gc_invocations);
  }

  Nanos avg_write_latency() const {
    return write_ops == 0 ? 0
                          : total_write_latency / static_cast<Nanos>(write_ops);
  }

  Nanos avg_read_latency() const {
    return read_ops == 0 ? 0
                         : total_read_latency / static_cast<Nanos>(read_ops);
  }
};

}  // namespace chameleon::flashsim
