// Named workload presets: the five evaluation traces of Table III plus the
// two extra MSR traces (prn_0, proj_0) used by the Fig 1 motivation study.
// Parameters derive from the paper's Table III; mean request size is
// total request bytes / request count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/synthetic_trace.hpp"

namespace chameleon::workload {

/// All preset names, in the order the paper's figures list them.
std::vector<std::string> preset_names();

/// Names of the five traces used in the evaluation (Figs 4-8).
std::vector<std::string> evaluation_preset_names();

/// Table III parameters for a named preset (unscaled). Throws
/// std::invalid_argument for unknown names.
SyntheticTraceConfig preset_config(const std::string& name);

/// Construct a stream for a preset at the given scale factor.
std::unique_ptr<SyntheticTrace> make_preset(const std::string& name,
                                            double scale, std::uint64_t seed = 42);

}  // namespace chameleon::workload
