#include "workload/trace_writer.hpp"

#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace chameleon::workload {

std::uint64_t write_msr_trace(WorkloadStream& stream,
                              const TraceWriterConfig& config) {
  std::ofstream out(config.path);
  if (!out) {
    throw std::runtime_error("write_msr_trace: cannot open " + config.path);
  }
  // The published traces start at a large absolute FILETIME; any base works
  // as long as deltas are preserved. 116444736000000000 = 1970-01-01.
  constexpr std::uint64_t kEpochFiletime = 116444736000000000ULL;

  // Assign each distinct object a dense extent-aligned offset so the reader
  // quantizes it back to one object.
  std::unordered_map<ObjectId, std::uint64_t> offsets;
  stream.reset();
  TraceRecord rec;
  std::uint64_t written = 0;
  while (stream.next(rec)) {
    const auto [it, inserted] =
        offsets.try_emplace(rec.oid, offsets.size() * config.object_bytes);
    const std::uint64_t filetime =
        kEpochFiletime + static_cast<std::uint64_t>(rec.timestamp) / 100;
    const std::uint32_t size =
        rec.size_bytes > config.object_bytes ? config.object_bytes
                                             : rec.size_bytes;
    out << filetime << ',' << config.hostname << ',' << config.disk_number
        << ',' << (rec.is_write ? "Write" : "Read") << ',' << it->second
        << ',' << size << ",0\n";
    ++written;
  }
  stream.reset();
  return written;
}

}  // namespace chameleon::workload
