// Zipfian rank generator following the Gray et al. method used by YCSB's
// ZipfianGenerator: draws ranks in [0, n) with P(rank = i) proportional to
// 1/(i+1)^theta, in O(1) per draw after an O(n) zeta precomputation.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace chameleon::workload {

class ZipfGenerator {
 public:
  /// n items, skew theta in [0, 1). theta ~0.99 matches YCSB's default.
  ZipfGenerator(std::uint64_t n, double theta);

  /// Draw a rank; rank 0 is the most popular item.
  std::uint64_t next(Xoshiro256& rng) const;

  std::uint64_t item_count() const { return n_; }
  double theta() const { return theta_; }

  /// Probability mass of the single hottest rank (for tests).
  double top_probability() const;

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2_;
};

}  // namespace chameleon::workload
