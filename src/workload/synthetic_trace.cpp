#include "workload/synthetic_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/fnv.hpp"

namespace chameleon::workload {

SyntheticTraceConfig SyntheticTraceConfig::scaled(double s) const {
  if (s <= 0.0) throw std::invalid_argument("scaled: factor must be positive");
  SyntheticTraceConfig out = *this;
  out.total_requests = std::max<std::uint64_t>(
      1000, static_cast<std::uint64_t>(static_cast<double>(total_requests) * s));
  out.dataset_bytes = std::max<std::uint64_t>(
      64 * kMiB,
      static_cast<std::uint64_t>(static_cast<double>(dataset_bytes) * s));
  return out;
}

SyntheticTrace::SyntheticTrace(const SyntheticTraceConfig& config)
    : config_(config),
      object_count_(std::max<std::uint64_t>(
          64, config.dataset_bytes / std::max<std::uint32_t>(1, config.mean_object_bytes))),
      zipf_(object_count_, config.zipf_theta),
      rng_(config.seed) {
  if (config_.total_requests == 0) {
    throw std::invalid_argument("SyntheticTrace: zero requests");
  }
  // Lognormal with mean = mean_object_bytes before clamping:
  // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
  mu_ = std::log(static_cast<double>(config_.mean_object_bytes)) -
        config_.size_sigma * config_.size_sigma / 2.0;

  // Clamping and page rounding distort the mean; calibrate an overall scale
  // against an empirical sample so dataset_bytes comes out right.
  const std::uint64_t sample =
      std::min<std::uint64_t>(object_count_, 50'000);
  double sum = 0.0;
  for (std::uint64_t u = 0; u < sample; ++u) sum += raw_size(u);
  const double empirical_mean = sum / static_cast<double>(sample);
  size_scale_ = static_cast<double>(config_.mean_object_bytes) / empirical_mean;
}

double SyntheticTrace::raw_size(std::uint64_t index) const {
  // Two hash-derived uniforms -> one standard normal (Box-Muller), then
  // lognormal transform. Deterministic per object index.
  const std::uint64_t h1 = fnv1a64(index ^ (config_.seed * 0x9E3779B97F4A7C15ULL));
  const std::uint64_t h2 = fnv1a64(h1 ^ 0xD6E8FEB86659FD93ULL);
  const double u1 =
      (static_cast<double>(h1 >> 11) + 0.5) * 0x1.0p-53;  // (0,1)
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  const double size = std::exp(mu_ + config_.size_sigma * z);
  return std::clamp(size, static_cast<double>(config_.min_object_bytes),
                    static_cast<double>(config_.max_object_bytes));
}

std::uint32_t SyntheticTrace::object_size(std::uint64_t index) const {
  const double s = raw_size(index) * size_scale_;
  const double clamped =
      std::clamp(s, static_cast<double>(config_.min_object_bytes),
                 static_cast<double>(config_.max_object_bytes));
  return static_cast<std::uint32_t>(clamped);
}

ObjectId SyntheticTrace::object_id(std::uint64_t index) const {
  return fnv1a64(index * 0x2545F4914F6CDD1DULL + config_.seed);
}

std::uint64_t SyntheticTrace::rank_to_index(std::uint64_t rank,
                                            std::uint64_t phase) const {
  // Phase-salted hash permutation of ranks onto object indices ("scrambled
  // zipfian"). A new phase re-targets the hot ranks at different objects.
  return fnv1a64(rank ^ (phase * 0xBF58476D1CE4E5B9ULL) ^ config_.seed) %
         object_count_;
}

bool SyntheticTrace::next(TraceRecord& out) {
  if (emitted_ >= config_.total_requests) return false;

  // Exponential interarrival with rate total_requests / duration.
  const double mean_gap = static_cast<double>(config_.duration) /
                          static_cast<double>(config_.total_requests);
  const double u = std::max(rng_.next_double(), 1e-12);
  now_ += static_cast<Nanos>(-mean_gap * std::log(u));

  const std::uint64_t phase =
      config_.hotspot_shift > 0
          ? static_cast<std::uint64_t>(now_ / config_.hotspot_shift)
          : 0;
  const std::uint64_t rank = zipf_.next(rng_);
  const std::uint64_t index = rank_to_index(rank, phase);

  out.timestamp = now_;
  out.oid = object_id(index);
  out.size_bytes = object_size(index);
  out.is_write = rng_.next_bool(config_.write_ratio);
  ++emitted_;
  return true;
}

void SyntheticTrace::reset() {
  rng_ = Xoshiro256(config_.seed);
  emitted_ = 0;
  now_ = 0;
}

}  // namespace chameleon::workload
