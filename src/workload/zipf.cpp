#include "workload/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace chameleon::workload {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be > 0");
  if (theta < 0.0 || theta >= 1.0) {
    throw std::invalid_argument("ZipfGenerator: theta must be in [0, 1)");
  }
  zetan_ = zeta(n_, theta_);
  zeta2_ = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

double ZipfGenerator::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfGenerator::next(Xoshiro256& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfGenerator::top_probability() const { return 1.0 / zetan_; }

}  // namespace chameleon::workload
