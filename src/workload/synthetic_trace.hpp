// Synthetic trace engine calibrated to the aggregate characteristics the
// paper reports in Table III (request count, dataset size, request bytes,
// write ratio). Stands in for the YCSB benchmark and the MSR-Cambridge
// block traces, which are not shipped offline; see DESIGN.md §2.
//
// Mechanics:
//  * object population sized so  object_count x mean_object_size = dataset;
//  * per-object sizes are deterministic lognormal draws (hash-seeded),
//    rescaled at construction so the empirical mean hits the target;
//  * accesses are Zipfian over ranks; ranks map to objects through a
//    phase-salted hash permutation, so the hot set *drifts* every
//    `hotspot_shift` of virtual time — the "time varying workload patterns"
//    the paper motivates with (Facebook KV analysis);
//  * arrivals are exponential with rate = requests / duration.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "workload/request.hpp"
#include "workload/zipf.hpp"

namespace chameleon::workload {

struct SyntheticTraceConfig {
  std::string name = "synthetic";
  std::uint64_t total_requests = 100'000;
  std::uint64_t dataset_bytes = 1 * kGiB;
  double write_ratio = 0.85;
  double zipf_theta = 0.9;
  Nanos duration = 24 * kHour;
  /// Period of hot-set drift; 0 disables drift.
  Nanos hotspot_shift = 12 * kHour;
  /// Mean object size; object_count = dataset_bytes / mean_object_bytes.
  std::uint32_t mean_object_bytes = 32 * 1024;
  /// Lognormal sigma of object sizes.
  double size_sigma = 0.8;
  std::uint32_t min_object_bytes = 4 * 1024;
  std::uint32_t max_object_bytes = 1 * 1024 * 1024;
  std::uint64_t seed = 42;

  /// Multiply request volume and dataset by `s`, keeping per-object write
  /// intensity (and thus GC pressure) invariant.
  SyntheticTraceConfig scaled(double s) const;
};

class SyntheticTrace final : public WorkloadStream {
 public:
  explicit SyntheticTrace(const SyntheticTraceConfig& config);

  bool next(TraceRecord& out) override;
  void reset() override;
  std::uint64_t expected_requests() const override {
    return config_.total_requests;
  }
  const std::string& name() const override { return config_.name; }

  const SyntheticTraceConfig& config() const { return config_; }
  std::uint64_t object_count() const { return object_count_; }

  /// Deterministic size of object index u (same for every pass).
  std::uint32_t object_size(std::uint64_t index) const;
  /// Stable object id for object index u.
  ObjectId object_id(std::uint64_t index) const;

 private:
  std::uint64_t rank_to_index(std::uint64_t rank, std::uint64_t phase) const;
  double raw_size(std::uint64_t index) const;

  SyntheticTraceConfig config_;
  std::uint64_t object_count_;
  ZipfGenerator zipf_;
  double size_scale_ = 1.0;  ///< calibration factor so mean size hits target
  double mu_ = 0.0;          ///< lognormal location parameter

  Xoshiro256 rng_;
  std::uint64_t emitted_ = 0;
  Nanos now_ = 0;
};

}  // namespace chameleon::workload
