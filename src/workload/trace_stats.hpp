// Aggregate characteristics of a request stream — the columns of Table III.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "workload/request.hpp"

namespace chameleon::workload {

struct TraceCharacteristics {
  std::uint64_t request_count = 0;
  std::uint64_t write_count = 0;
  std::uint64_t read_count = 0;
  std::uint64_t request_bytes = 0;  ///< total R/W bytes ("Reqs. Data")
  std::uint64_t dataset_bytes = 0;  ///< sum of distinct objects' sizes
  std::uint64_t unique_objects = 0;
  Nanos duration = 0;

  double write_ratio() const {
    return request_count == 0
               ? 0.0
               : static_cast<double>(write_count) /
                     static_cast<double>(request_count);
  }
  double dataset_gb() const {
    return static_cast<double>(dataset_bytes) / static_cast<double>(kGiB);
  }
  double request_gb() const {
    return static_cast<double>(request_bytes) / static_cast<double>(kGiB);
  }
};

/// Drain (and reset) a stream, computing its Table III row.
TraceCharacteristics characterize(WorkloadStream& stream);

}  // namespace chameleon::workload
