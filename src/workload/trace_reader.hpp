// Reader for real MSR-Cambridge block traces in their published CSV format:
//   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
// Timestamp is a Windows FILETIME (100ns ticks since 1601); Type is
// "Read"/"Write"; Offset/Size are bytes. Offsets are quantized into
// fixed-size logical objects, mirroring how the paper maps trace records to
// objects. Use this when the public traces are available locally; the
// synthetic presets stand in otherwise.
#pragma once

#include <fstream>
#include <string>

#include "workload/request.hpp"

namespace chameleon::workload {

struct TraceReaderConfig {
  std::string path;
  /// Extent size used to quantize byte offsets into object ids.
  std::uint32_t object_bytes = 64 * 1024;
  /// Stop after this many records (0 = whole file).
  std::uint64_t limit = 0;
};

class MsrTraceReader final : public WorkloadStream {
 public:
  explicit MsrTraceReader(const TraceReaderConfig& config);

  bool next(TraceRecord& out) override;
  void reset() override;
  std::uint64_t expected_requests() const override { return config_.limit; }
  const std::string& name() const override { return name_; }

  std::uint64_t parse_errors() const { return parse_errors_; }

  /// Parse a single CSV line; returns false on malformed input.
  static bool parse_line(const std::string& line, std::uint32_t object_bytes,
                         TraceRecord& out);

 private:
  TraceReaderConfig config_;
  std::string name_;
  std::ifstream file_;
  std::uint64_t emitted_ = 0;
  std::uint64_t parse_errors_ = 0;
  Nanos first_timestamp_ = 0;
  bool have_first_timestamp_ = false;
};

}  // namespace chameleon::workload
