#include "workload/trace_stats.hpp"

namespace chameleon::workload {

TraceCharacteristics characterize(WorkloadStream& stream) {
  stream.reset();
  TraceCharacteristics out;
  std::unordered_map<ObjectId, std::uint32_t> seen;
  TraceRecord rec;
  while (stream.next(rec)) {
    ++out.request_count;
    if (rec.is_write) {
      ++out.write_count;
    } else {
      ++out.read_count;
    }
    out.request_bytes += rec.size_bytes;
    out.duration = rec.timestamp;
    const auto [it, inserted] = seen.try_emplace(rec.oid, rec.size_bytes);
    if (inserted) {
      out.dataset_bytes += rec.size_bytes;
    }
  }
  out.unique_objects = seen.size();
  stream.reset();
  return out;
}

}  // namespace chameleon::workload
