// The standard YCSB core workload mixes (Cooper et al., SoCC'10), mapped
// onto the calibrated synthetic trace engine. The paper evaluates with the
// Zipf-distributed YCSB pattern ("ycsb-zipf", write-heavy); these presets
// let users study Chameleon under the canonical A-F mixes too.
//
//   A: update heavy (50/50 read/update), zipfian
//   B: read mostly (95/5), zipfian
//   C: read only (100/0), zipfian
//   D: read latest (95/5 insert), recency-skewed
//   F: read-modify-write (50/50), zipfian  (each RMW = one read + one write)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/synthetic_trace.hpp"

namespace chameleon::workload {

enum class YcsbMix : std::uint8_t { kA, kB, kC, kD, kF };

const char* ycsb_mix_name(YcsbMix mix);
std::vector<YcsbMix> all_ycsb_mixes();

struct YcsbConfig {
  YcsbMix mix = YcsbMix::kA;
  std::uint64_t record_count = 100'000;  ///< objects in the store
  std::uint64_t operation_count = 1'000'000;
  std::uint32_t record_bytes = 1000;  ///< YCSB default: 10 fields x 100B
  Nanos duration = 24 * kHour;
  std::uint64_t seed = 42;
};

/// YCSB request stream. Mixes A/B/C/F draw records zipfian(0.99); D draws
/// from a sliding "latest" window. F issues read+write pairs.
class YcsbWorkload final : public WorkloadStream {
 public:
  explicit YcsbWorkload(const YcsbConfig& config);

  bool next(TraceRecord& out) override;
  void reset() override;
  std::uint64_t expected_requests() const override;
  const std::string& name() const override { return name_; }

  const YcsbConfig& config() const { return config_; }
  double read_fraction() const;

 private:
  ObjectId record_id(std::uint64_t index) const;
  std::uint64_t pick_record();

  YcsbConfig config_;
  std::string name_;
  ZipfGenerator zipf_;
  Xoshiro256 rng_;
  std::uint64_t emitted_ = 0;
  Nanos now_ = 0;
  /// D-mix: records inserted so far (the "latest" window grows).
  std::uint64_t inserted_;
  /// F-mix: a pending write half of a read-modify-write.
  bool rmw_write_pending_ = false;
  ObjectId rmw_oid_ = 0;
};

}  // namespace chameleon::workload
