#include "workload/trace_reader.hpp"

#include <charconv>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "common/fnv.hpp"

namespace chameleon::workload {
namespace {

/// Split a CSV line into at most 7 fields (no quoting in MSR traces).
std::size_t split_csv(std::string_view line, std::string_view* fields,
                      std::size_t max_fields) {
  std::size_t count = 0;
  std::size_t start = 0;
  while (count < max_fields) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields[count++] = line.substr(start);
      break;
    }
    fields[count++] = line.substr(start, comma - start);
    start = comma + 1;
  }
  return count;
}

template <typename T>
bool parse_number(std::string_view s, T& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

MsrTraceReader::MsrTraceReader(const TraceReaderConfig& config)
    : config_(config), file_(config.path) {
  if (!file_.is_open()) {
    throw std::runtime_error("MsrTraceReader: cannot open " + config.path);
  }
  // Derive a short display name from the file path.
  const auto slash = config.path.find_last_of('/');
  name_ = slash == std::string::npos ? config.path
                                     : config.path.substr(slash + 1);
}

bool MsrTraceReader::parse_line(const std::string& line,
                                std::uint32_t object_bytes, TraceRecord& out) {
  std::string_view fields[7];
  if (split_csv(line, fields, 7) < 6) return false;

  std::uint64_t filetime = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  if (!parse_number(fields[0], filetime) || !parse_number(fields[4], offset) ||
      !parse_number(fields[5], size)) {
    return false;
  }
  const std::string_view type = fields[3];
  const bool is_write = (type == "Write" || type == "write" || type == "W");
  const bool is_read = (type == "Read" || type == "read" || type == "R");
  if (!is_write && !is_read) return false;

  // FILETIME is 100ns ticks; convert to nanoseconds (absolute; the caller
  // normalizes to trace start). Quantize the extent into one object.
  out.timestamp = static_cast<Nanos>(filetime * 100ULL);
  const std::uint64_t extent = offset / object_bytes;
  // Mix the disk number in so multi-disk traces do not alias extents.
  std::uint64_t disk = 0;
  (void)parse_number(fields[2], disk);
  out.oid = fnv1a64(extent ^ (disk << 56));
  out.size_bytes = static_cast<std::uint32_t>(
      size == 0 ? object_bytes : (size > object_bytes ? object_bytes : size));
  out.is_write = is_write;
  return true;
}

bool MsrTraceReader::next(TraceRecord& out) {
  if (config_.limit != 0 && emitted_ >= config_.limit) return false;
  std::string line;
  while (std::getline(file_, line)) {
    if (line.empty()) continue;
    if (!parse_line(line, config_.object_bytes, out)) {
      ++parse_errors_;
      continue;
    }
    if (!have_first_timestamp_) {
      first_timestamp_ = out.timestamp;
      have_first_timestamp_ = true;
    }
    // Unsigned subtraction: FILETIME * 100ns overflows Nanos for absolute
    // dates, but differences within one trace are exact modulo 2^64.
    out.timestamp = static_cast<Nanos>(
        static_cast<std::uint64_t>(out.timestamp) -
        static_cast<std::uint64_t>(first_timestamp_));
    ++emitted_;
    return true;
  }
  return false;
}

void MsrTraceReader::reset() {
  file_.clear();
  file_.seekg(0);
  emitted_ = 0;
  parse_errors_ = 0;
  have_first_timestamp_ = false;
}

}  // namespace chameleon::workload
