// Export any request stream as an MSR-Cambridge-format CSV, the format
// MsrTraceReader consumes. Lets users materialize the calibrated synthetic
// presets as shareable trace files (and round-trip them through the reader).
#pragma once

#include <cstdint>
#include <string>

#include "workload/request.hpp"

namespace chameleon::workload {

struct TraceWriterConfig {
  std::string path;
  std::string hostname = "chameleon";
  std::uint32_t disk_number = 0;
  /// Object ids are mapped to byte offsets spaced this far apart.
  std::uint32_t object_bytes = 64 * 1024;
};

/// Drain (and reset) `stream`, writing one CSV line per record. Returns the
/// number of records written. Timestamps are emitted as Windows FILETIME
/// ticks relative to an arbitrary epoch, as in the published traces.
std::uint64_t write_msr_trace(WorkloadStream& stream,
                              const TraceWriterConfig& config);

}  // namespace chameleon::workload
