#include "workload/ycsb.hpp"

#include <cmath>
#include <stdexcept>

#include "common/fnv.hpp"

namespace chameleon::workload {

const char* ycsb_mix_name(YcsbMix mix) {
  switch (mix) {
    case YcsbMix::kA: return "ycsb-a";
    case YcsbMix::kB: return "ycsb-b";
    case YcsbMix::kC: return "ycsb-c";
    case YcsbMix::kD: return "ycsb-d";
    case YcsbMix::kF: return "ycsb-f";
  }
  return "ycsb-?";
}

std::vector<YcsbMix> all_ycsb_mixes() {
  return {YcsbMix::kA, YcsbMix::kB, YcsbMix::kC, YcsbMix::kD, YcsbMix::kF};
}

YcsbWorkload::YcsbWorkload(const YcsbConfig& config)
    : config_(config),
      name_(ycsb_mix_name(config.mix)),
      zipf_(config.record_count == 0 ? 1 : config.record_count, 0.99),
      rng_(config.seed),
      inserted_(config.record_count) {
  if (config_.record_count == 0 || config_.operation_count == 0) {
    throw std::invalid_argument("YcsbConfig: zero records or operations");
  }
}

double YcsbWorkload::read_fraction() const {
  switch (config_.mix) {
    case YcsbMix::kA: return 0.50;
    case YcsbMix::kB: return 0.95;
    case YcsbMix::kC: return 1.00;
    case YcsbMix::kD: return 0.95;
    case YcsbMix::kF: return 0.50;  // RMW pairs: half the ops are reads
  }
  return 0.5;
}

ObjectId YcsbWorkload::record_id(std::uint64_t index) const {
  return fnv1a64(index * 0x9E3779B97F4A7C15ULL + config_.seed);
}

std::uint64_t YcsbWorkload::pick_record() {
  if (config_.mix == YcsbMix::kD) {
    // "Read latest": exponential recency bias over inserted records.
    const double u = std::max(rng_.next_double(), 1e-12);
    const auto back = static_cast<std::uint64_t>(
        -std::log(u) * static_cast<double>(inserted_) / 10.0);
    return back >= inserted_ ? 0 : inserted_ - 1 - back;
  }
  return zipf_.next(rng_);
}

std::uint64_t YcsbWorkload::expected_requests() const {
  // F issues two records (read + write) per RMW operation.
  return config_.mix == YcsbMix::kF ? config_.operation_count * 2
                                    : config_.operation_count;
}

bool YcsbWorkload::next(TraceRecord& out) {
  if (rmw_write_pending_) {
    // Second half of a read-modify-write: update what was just read.
    rmw_write_pending_ = false;
    out.timestamp = now_;
    out.oid = rmw_oid_;
    out.size_bytes = config_.record_bytes;
    out.is_write = true;
    ++emitted_;
    return true;
  }
  if (emitted_ >= expected_requests()) return false;

  const double mean_gap = static_cast<double>(config_.duration) /
                          static_cast<double>(expected_requests());
  const double u = std::max(rng_.next_double(), 1e-12);
  now_ += static_cast<Nanos>(-mean_gap * std::log(u));

  out.timestamp = now_;
  out.size_bytes = config_.record_bytes;

  switch (config_.mix) {
    case YcsbMix::kA:
    case YcsbMix::kB:
    case YcsbMix::kC: {
      out.oid = record_id(pick_record());
      out.is_write = !rng_.next_bool(read_fraction());
      break;
    }
    case YcsbMix::kD: {
      if (rng_.next_bool(0.05)) {
        out.oid = record_id(inserted_++);  // insert a new record
        out.is_write = true;
      } else {
        out.oid = record_id(pick_record());
        out.is_write = false;
      }
      break;
    }
    case YcsbMix::kF: {
      out.oid = record_id(pick_record());
      out.is_write = false;  // the read half; the write half follows
      rmw_write_pending_ = true;
      rmw_oid_ = out.oid;
      break;
    }
  }
  ++emitted_;
  return true;
}

void YcsbWorkload::reset() {
  rng_ = Xoshiro256(config_.seed);
  emitted_ = 0;
  now_ = 0;
  inserted_ = config_.record_count;
  rmw_write_pending_ = false;
  rmw_oid_ = 0;
}

}  // namespace chameleon::workload
