// Trace record model and the stream interface shared by synthetic
// generators and real trace file readers.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace chameleon::workload {

/// One I/O request. Each record addresses a whole logical object, matching
/// the paper's mapping of trace records to objects (§IV-A).
struct TraceRecord {
  Nanos timestamp = 0;
  ObjectId oid = 0;
  std::uint32_t size_bytes = 0;
  bool is_write = true;
};

/// Pull-based request stream. Implementations must be deterministic for a
/// fixed configuration and seed.
class WorkloadStream {
 public:
  virtual ~WorkloadStream() = default;

  /// Produce the next record; returns false at end of stream.
  virtual bool next(TraceRecord& out) = 0;

  /// Rewind to the beginning (restores the generator's initial state).
  virtual void reset() = 0;

  virtual std::uint64_t expected_requests() const = 0;
  virtual const std::string& name() const = 0;
};

}  // namespace chameleon::workload
