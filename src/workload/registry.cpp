#include "workload/registry.hpp"

#include <stdexcept>
#include <string_view>

#include "common/fnv.hpp"

namespace chameleon::workload {
namespace {

struct PresetRow {
  const char* name;
  std::uint64_t requests;
  double dataset_gb;
  double request_gb;  ///< total R/W request bytes (Table III "Reqs. Data")
  double write_ratio;
  double zipf_theta;
  Nanos duration;
};

// Table III rows; YCSB runs 85 virtual hours (Fig 8), MSR traces one week.
// zipf_theta: YCSB uses its default 0.99; MSR block traces are strongly
// skewed at block level — 0.9 reproduces the 3-4x erasure spreads of Fig 1.
// prn_0/proj_0 are not in Table III; their request volumes come from the
// published MSR trace summaries, rounded.
constexpr PresetRow kPresets[] = {
    {"ycsb-zipf", 1'200'000, 10.4, 55.0, 0.811, 0.99, 85 * kHour},
    {"mds_0", 1'300'000, 3.1, 44.0, 0.932, 0.90, 168 * kHour},
    {"web_1", 1'300'000, 3.8, 18.0, 0.769, 0.90, 168 * kHour},
    {"usr_0", 2'200'000, 2.5, 194.0, 0.836, 0.90, 168 * kHour},
    {"hm_0", 4'000'000, 1.9, 135.0, 0.866, 0.90, 168 * kHour},
    {"prn_0", 2'200'000, 5.5, 83.0, 0.892, 0.90, 168 * kHour},
    {"proj_0", 4'200'000, 3.2, 145.0, 0.875, 0.90, 168 * kHour},
};

const PresetRow& find_preset(const std::string& name) {
  for (const auto& row : kPresets) {
    if (name == row.name) return row;
  }
  throw std::invalid_argument("unknown workload preset: " + name);
}

}  // namespace

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  for (const auto& row : kPresets) names.emplace_back(row.name);
  return names;
}

std::vector<std::string> evaluation_preset_names() {
  return {"hm_0", "mds_0", "usr_0", "web_1", "ycsb-zipf"};
}

SyntheticTraceConfig preset_config(const std::string& name) {
  const PresetRow& row = find_preset(name);
  SyntheticTraceConfig cfg;
  cfg.name = row.name;
  cfg.total_requests = row.requests;
  cfg.dataset_bytes =
      static_cast<std::uint64_t>(row.dataset_gb * static_cast<double>(kGiB));
  cfg.write_ratio = row.write_ratio;
  cfg.zipf_theta = row.zipf_theta;
  cfg.duration = row.duration;
  cfg.hotspot_shift = row.duration / 8;  // hot set drifts ~8x per trace
  // Mean request size = request bytes / request count (requests address
  // whole objects, so this is also the mean object size).
  const double mean_size = row.request_gb * static_cast<double>(kGiB) /
                           static_cast<double>(row.requests);
  cfg.mean_object_bytes = static_cast<std::uint32_t>(mean_size);
  cfg.seed = 42 + fnv1a64(std::string_view(row.name)) % 1000;
  return cfg;
}

std::unique_ptr<SyntheticTrace> make_preset(const std::string& name,
                                            double scale, std::uint64_t seed) {
  SyntheticTraceConfig cfg = preset_config(name).scaled(scale);
  cfg.seed = seed + fnv1a64(std::string_view(name)) % 997;
  return std::make_unique<SyntheticTrace>(cfg);
}

}  // namespace chameleon::workload
