// The durability manager: glues the WAL and the checkpointer to a live
// core::Chameleon as its MutationJournal. Epoch boundaries are the
// checkpoint barriers — on_epoch() rotates the WAL and snapshots the whole
// cluster, so the WAL tail between checkpoints carries only deterministic
// data-path records and replaying it over the snapshot restores the crashed
// process fault::cluster_digest-exact.
//
// Lifecycle: construct with a FRESH system (same config as the crashed one),
// call open() — it recovers from the newest valid checkpoint + WAL tail (or
// initializes an empty data dir), writes a fresh barrier checkpoint, and
// attaches itself as the system's journal. From then on every mutation is
// logged per the fsync policy until the manager is destroyed.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>

#include "common/journal.hpp"
#include "durability/checkpoint.hpp"
#include "durability/wal.hpp"

namespace chameleon::core {
class Chameleon;
}

namespace chameleon::durability {

class GroupCommit;

struct DurabilityConfig {
  std::filesystem::path dir;  ///< data directory (created if absent)
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  std::uint64_t segment_bytes = 8 * kMiB;        ///< WAL rotation size cap
  std::uint64_t fsync_interval_bytes = 256 * kKiB;  ///< kInterval cadence
  /// Checkpoint every Nth balancing epoch. 1 (the default) makes every
  /// epoch a barrier — the only cadence with a digest-exactness guarantee
  /// (between barriers kEpoch records replay the balancer best-effort).
  std::uint32_t checkpoint_every_epochs = 1;
  std::uint32_t retain_checkpoints = 2;  ///< older snapshots are pruned
  /// Amortize fsync=always across concurrent writers: appends skip the
  /// per-record fsync and a GroupCommit committer thread (started by
  /// open()) batches one fsync per group; acks gate on when_durable().
  /// Ignored unless fsync == kAlways.
  bool group_commit = false;
};

/// What recovery found and did; printed by chameleon_server at boot and
/// asserted by the durability tests.
struct RecoveryReport {
  bool recovered = false;          ///< any prior state was restored
  bool checkpoint_loaded = false;
  std::uint64_t checkpoint_seq = 0;
  Epoch checkpoint_epoch = 0;
  std::uint32_t corrupt_checkpoints = 0;  ///< snapshots rejected on the way
  std::uint64_t replayed_records = 0;     ///< WAL records re-applied
  std::uint64_t segments_scanned = 0;
  std::uint64_t truncated_bytes = 0;  ///< bytes dropped from a torn tail
  bool torn_tail = false;             ///< the final WAL record was torn
  std::uint64_t digest = 0;           ///< cluster digest after recovery
  double duration_seconds = 0.0;      ///< wall-clock recovery time
};

class Manager : public MutationJournal {
 public:
  /// `system` must be freshly constructed and outlive the manager.
  Manager(core::Chameleon& system, DurabilityConfig config);
  ~Manager() override;

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Recover-or-initialize, then attach as the system's journal. Throws
  /// std::runtime_error on unrecoverable corruption (every checkpoint bad
  /// AND the WAL broken mid-log).
  RecoveryReport open();

  /// Manual barrier: rotate the WAL, snapshot, prune. (Normally driven by
  /// on_epoch; exposed for shutdown and for tests.)
  CheckpointMeta checkpoint();

  /// Force buffered WAL records to stable storage regardless of policy.
  void sync() {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    wal_->sync();
  }

  /// Group-commit primitive: one fsync covering every record appended
  /// before the call. Returns the highest record seq now durable. Safe to
  /// call from the committer thread while the store thread appends.
  std::uint64_t sync_covering() {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    const std::uint64_t seq = wal_->last_record_seq();
    wal_->sync();
    return seq;
  }

  /// Seq of the most recently appended record (0 = none). Lock-free; the
  /// serving path reads it right after a mutation to learn which commit
  /// seq its ack must wait for.
  std::uint64_t last_appended_seq() const {
    return last_appended_seq_.load(std::memory_order_acquire);
  }

  /// True when deferred-fsync group commit is running (config.group_commit
  /// under fsync=always, after open()).
  bool group_commit_active() const { return group_commit_ != nullptr; }
  GroupCommit* group_commit() { return group_commit_.get(); }

  const DurabilityConfig& config() const { return config_; }
  const RecoveryReport& last_recovery() const { return recovery_; }
  const WalWriter& wal() const { return *wal_; }

  // --- MutationJournal ------------------------------------------------------
  void on_put_sim(ObjectId oid, std::uint64_t bytes, Epoch epoch) override;
  void on_put_value(ObjectId oid, std::span<const std::uint8_t> value,
                    Epoch epoch) override;
  void on_remove(ObjectId oid) override;
  void on_epoch(Epoch epoch) override;
  void on_membership(ServerId server, bool up) override;

 private:
  void append(WalRecord record);
  /// Apply one replayed WAL record to the (journal-less) system.
  void replay_record(const WalRecord& record);
  /// Delete checkpoints beyond the retain count and WAL segments older
  /// than the oldest retained checkpoint still needs.
  void prune();
  void export_metrics();

  core::Chameleon& system_;
  DurabilityConfig config_;
  std::unique_ptr<WalWriter> wal_;
  /// Guards wal_ (and the checkpoint barrier's WAL half): the store thread
  /// appends while the group-commit committer fsyncs.
  std::mutex wal_mutex_;
  std::atomic<std::uint64_t> last_appended_seq_{0};
  std::unique_ptr<GroupCommit> group_commit_;
  std::uint64_t checkpoint_seq_ = 0;       ///< last checkpoint written/loaded
  std::uint64_t records_since_checkpoint_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  bool opened_ = false;
  RecoveryReport recovery_;
  /// (checkpoint seq, first WAL segment it needs), oldest first.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> retained_;
};

}  // namespace chameleon::durability
