#include "durability/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "common/binary_io.hpp"
#include "common/crc32c.hpp"
#include "core/chameleon.hpp"
#include "fault/digest.hpp"

namespace chameleon::durability {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void serialize_object_meta(BinaryWriter& w, const meta::ObjectMeta& m) {
  w.u64(m.oid);
  w.u64(m.size_bytes);
  w.u8(static_cast<std::uint8_t>(m.state));
  w.u32(m.placement_version);
  w.u8(static_cast<std::uint8_t>(m.src.size()));
  for (const ServerId s : m.src) w.u32(s);
  w.u8(static_cast<std::uint8_t>(m.dst.size()));
  for (const ServerId s : m.dst) w.u32(s);
  w.u32(m.state_since);
  w.f64(m.popularity);
  w.u32(m.writes_in_epoch);
  w.u64(m.total_writes);
  w.u32(m.heat_epoch);
  w.u32(m.last_write_epoch);
}

meta::ObjectMeta deserialize_object_meta(BinaryReader& r) {
  meta::ObjectMeta m;
  m.oid = r.u64();
  m.size_bytes = r.u64();
  const std::uint8_t state = r.u8();
  if (state > static_cast<std::uint8_t>(meta::RedState::kEcEwo)) {
    throw std::runtime_error("checkpoint: invalid redundancy state");
  }
  m.state = static_cast<meta::RedState>(state);
  m.placement_version = r.u32();
  const std::uint8_t src_count = r.u8();
  if (src_count > 16) throw std::runtime_error("checkpoint: src overflow");
  for (std::uint8_t i = 0; i < src_count; ++i) m.src.push_back(r.u32());
  const std::uint8_t dst_count = r.u8();
  if (dst_count > 16) throw std::runtime_error("checkpoint: dst overflow");
  for (std::uint8_t i = 0; i < dst_count; ++i) m.dst.push_back(r.u32());
  m.state_since = r.u32();
  m.popularity = r.f64();
  m.writes_in_epoch = r.u32();
  m.total_writes = r.u64();
  m.heat_epoch = r.u32();
  m.last_write_epoch = r.u32();
  return m;
}

std::vector<std::uint8_t> build_payload(core::Chameleon& system,
                                        const CheckpointMeta& meta) {
  std::vector<std::uint8_t> payload;
  BinaryWriter w(payload);
  const core::ChameleonConfig& config = system.config();

  // Header: identity + sanity fields a loader validates before trusting
  // the rest (a checkpoint is only meaningful under the writer's config).
  w.u32(kCheckpointVersion);
  w.u64(meta.seq);
  w.u32(meta.epoch);
  w.i64(meta.now);
  w.u64(meta.wal_segment_seq);
  w.u64(meta.next_record_seq);
  w.u64(meta.digest);
  w.u32(system.cluster().size());
  w.u8(config.supervised ? 1 : 0);
  w.u32(config.ssd.page_size_bytes);
  w.u32(config.ssd.pages_per_block);
  w.u32(config.ssd.block_count);
  w.u32(static_cast<std::uint32_t>(config.kv.replicas));
  w.u32(static_cast<std::uint32_t>(config.kv.ec_total));
  w.u32(static_cast<std::uint32_t>(config.kv.ec_data));

  // TABLE: every object's metadata, sorted by oid for determinism.
  std::vector<meta::ObjectMeta> metas;
  metas.reserve(system.table().object_count());
  system.table().for_each(
      [&metas](const meta::ObjectMeta& m) { metas.push_back(m); });
  std::sort(metas.begin(), metas.end(),
            [](const auto& a, const auto& b) { return a.oid < b.oid; });
  w.u64(metas.size());
  for (const auto& m : metas) serialize_object_meta(w, m);

  // SERVERS: full bit-level device state (flash is non-volatile; a host
  // crash does not reset erase counts or page maps).
  for (ServerId s = 0; s < system.cluster().size(); ++s) {
    system.cluster().server(s).log().save(w);
  }

  // PAYLOADS: real fragment bytes when the payload plane is on, sorted by
  // (server, fragment key) for determinism.
  const kv::PayloadStore* payloads = system.store().payload_store();
  w.u8(payloads != nullptr ? 1 : 0);
  if (payloads != nullptr) {
    std::vector<std::tuple<ServerId, cluster::FragmentKey,
                           const std::vector<std::uint8_t>*>>
        fragments;
    payloads->for_each([&fragments](ServerId server, cluster::FragmentKey key,
                                    const std::vector<std::uint8_t>& bytes) {
      fragments.emplace_back(server, key, &bytes);
    });
    std::sort(fragments.begin(), fragments.end(),
              [](const auto& a, const auto& b) {
                return std::tie(std::get<0>(a), std::get<1>(a)) <
                       std::tie(std::get<0>(b), std::get<1>(b));
              });
    w.u64(fragments.size());
    for (const auto& [server, key, bytes] : fragments) {
      w.u32(server);
      w.u64(key);
      w.u32(static_cast<std::uint32_t>(bytes->size()));
      w.bytes(*bytes);
    }
  }

  // MEMBERSHIP (supervised mode): declared-dead servers and not-yet-lapsed
  // suspects, so recovery resumes with the same liveness view.
  if (config.supervised) {
    core::Supervisor* supervisor = system.supervisor();
    const auto& failed = supervisor->failed_servers();
    // Partition failed_ into dead vs suspect using the membership view.
    std::vector<ServerId> dead, suspects;
    auto& membership = supervisor->membership();
    for (const ServerId s : failed) {
      if (membership.dead_servers().contains(s)) {
        dead.push_back(s);
      } else {
        suspects.push_back(s);
      }
    }
    w.u32(static_cast<std::uint32_t>(dead.size()));
    for (const ServerId s : dead) w.u32(s);
    w.u32(static_cast<std::uint32_t>(suspects.size()));
    for (const ServerId s : suspects) w.u32(s);
  }

  return payload;
}

}  // namespace

std::filesystem::path checkpoint_path(const std::filesystem::path& dir,
                                      std::uint64_t seq) {
  char name[48];
  std::snprintf(name, sizeof(name), "checkpoint-%016llx.ckpt",
                static_cast<unsigned long long>(seq));
  return dir / name;
}

std::vector<std::filesystem::path> list_checkpoints(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> checkpoints;
  if (!std::filesystem::exists(dir)) return checkpoints;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 11 + 16 + 5 && name.starts_with("checkpoint-") &&
        name.ends_with(".ckpt")) {
      checkpoints.push_back(entry.path());
    }
  }
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const auto& a, const auto& b) {
              return checkpoint_file_seq(a) < checkpoint_file_seq(b);
            });
  return checkpoints;
}

std::uint64_t checkpoint_file_seq(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  return std::stoull(name.substr(11, 16), nullptr, 16);
}

CheckpointMeta save_checkpoint(const std::filesystem::path& dir,
                               std::uint64_t seq, core::Chameleon& system,
                               std::uint64_t wal_segment_seq,
                               std::uint64_t next_record_seq) {
  CheckpointMeta meta;
  meta.seq = seq;
  meta.epoch = system.last_epoch_ran();
  meta.now = system.now();
  meta.wal_segment_seq = wal_segment_seq;
  meta.next_record_seq = next_record_seq;
  meta.digest = fault::cluster_digest(system.store());

  const std::vector<std::uint8_t> payload = build_payload(system, meta);

  std::vector<std::uint8_t> file;
  BinaryWriter w(file);
  for (const char c : kCheckpointMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u64(payload.size());
  w.bytes(payload);
  w.u32(crc32c(std::span<const std::uint8_t>(payload)));

  // Atomic publication: a reader sees the old checkpoint set or the new one.
  const std::filesystem::path path = checkpoint_path(dir, seq);
  const std::filesystem::path tmp = path.string() + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) sys_fail("checkpoint: open " + tmp.string());
  std::size_t written = 0;
  while (written < file.size()) {
    const ssize_t n = ::write(fd, file.data() + written, file.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      sys_fail("checkpoint: write");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    sys_fail("checkpoint: fsync");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    sys_fail("checkpoint: rename");
  }
  // Make the rename itself durable (directory entry).
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return meta;
}

CheckpointMeta load_checkpoint(const std::filesystem::path& path,
                               core::Chameleon& system) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open " + path.string());
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (bytes.size() < 8 + 8 + 4) {
    throw std::runtime_error("checkpoint: truncated file " + path.string());
  }
  BinaryReader frame(bytes);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(frame.u8());
  if (std::memcmp(magic, kCheckpointMagic, 8) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path.string());
  }
  const std::uint64_t payload_len = frame.u64();
  if (payload_len != bytes.size() - 8 - 8 - 4) {
    throw std::runtime_error("checkpoint: length mismatch in " +
                             path.string());
  }
  const auto payload = frame.bytes(payload_len);
  if (frame.u32() != crc32c(payload)) {
    throw std::runtime_error("checkpoint: CRC mismatch in " + path.string());
  }

  BinaryReader r(payload);
  CheckpointMeta meta;
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
  meta.seq = r.u64();
  meta.epoch = r.u32();
  meta.now = r.i64();
  meta.wal_segment_seq = r.u64();
  meta.next_record_seq = r.u64();
  meta.digest = r.u64();

  const core::ChameleonConfig& config = system.config();
  const std::uint32_t servers = r.u32();
  const bool supervised = r.u8() != 0;
  const std::uint32_t page_size = r.u32();
  const std::uint32_t pages_per_block = r.u32();
  const std::uint32_t block_count = r.u32();
  const std::uint32_t replicas = r.u32();
  const std::uint32_t ec_total = r.u32();
  const std::uint32_t ec_data = r.u32();
  if (servers != system.cluster().size() || supervised != config.supervised ||
      page_size != config.ssd.page_size_bytes ||
      pages_per_block != config.ssd.pages_per_block ||
      block_count != config.ssd.block_count ||
      replicas != config.kv.replicas || ec_total != config.kv.ec_total ||
      ec_data != config.kv.ec_data) {
    throw std::runtime_error(
        "checkpoint: configuration mismatch (the snapshot was written under "
        "a different cluster/device/redundancy config): " +
        path.string());
  }
  if (system.table().object_count() != 0) {
    throw std::runtime_error(
        "checkpoint: load target must be a fresh system (table not empty)");
  }

  // TABLE
  const std::uint64_t objects = r.u64();
  for (std::uint64_t i = 0; i < objects; ++i) {
    const meta::ObjectMeta m = deserialize_object_meta(r);
    if (!system.table().create(m)) {
      throw std::runtime_error("checkpoint: duplicate object in table");
    }
  }

  // SERVERS
  for (ServerId s = 0; s < system.cluster().size(); ++s) {
    system.cluster().server(s).log().restore(r);
  }

  // PAYLOADS
  if (r.u8() != 0) {
    system.store().enable_payloads();
    kv::PayloadStore* payloads = system.store().payload_store_mutable();
    const std::uint64_t fragments = r.u64();
    for (std::uint64_t i = 0; i < fragments; ++i) {
      const ServerId server = r.u32();
      const cluster::FragmentKey key = r.u64();
      const std::uint32_t len = r.u32();
      const auto view = r.bytes(len);
      payloads->store(server, key,
                      std::vector<std::uint8_t>(view.begin(), view.end()));
    }
  }

  // MEMBERSHIP
  if (supervised) {
    core::Supervisor* supervisor = system.supervisor();
    const std::uint32_t dead = r.u32();
    for (std::uint32_t i = 0; i < dead; ++i) {
      const ServerId s = r.u32();
      if (s >= system.cluster().size()) {
        throw std::runtime_error("checkpoint: dead server out of range");
      }
      supervisor->restore_failed(s);
    }
    const std::uint32_t suspects = r.u32();
    for (std::uint32_t i = 0; i < suspects; ++i) {
      const ServerId s = r.u32();
      if (s >= system.cluster().size()) {
        throw std::runtime_error("checkpoint: suspect server out of range");
      }
      supervisor->fail_server(s);  // not heartbeating, lease not lapsed yet
    }
  }
  if (!r.done()) {
    throw std::runtime_error("checkpoint: trailing bytes in " + path.string());
  }

  system.restore_clock(meta.now, meta.epoch);

  const std::uint64_t digest = fault::cluster_digest(system.store());
  if (digest != meta.digest) {
    throw std::runtime_error(
        "checkpoint: digest mismatch after restore (snapshot " +
        std::to_string(meta.digest) + ", restored " + std::to_string(digest) +
        "): " + path.string());
  }
  return meta;
}

}  // namespace chameleon::durability
