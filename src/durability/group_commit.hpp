// Group commit for fsync=always: instead of every journaled mutation paying
// its own fsync inside the store critical section, appends go to the page
// cache (WalWriter auto-fsync off) and a dedicated committer thread issues
// ONE fsync covering every record appended since the previous group. An ack
// for a mutation is released only once the commit sequence reaches that
// mutation's WAL record seq — crash before the group fsync means the op was
// simply never acked, so the no-acked-write-loss contract is unchanged.
//
// Leader/follower shape: the committer is the standing leader. Writers
// (the serving path) append, read Manager::last_appended_seq(), and either
// hand the ack continuation to when_durable() (svc completion path) or
// block in wait_durable() (tests, synchronous callers). All waiters that
// arrive while a group fsync is in flight share the next one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chameleon::durability {

class Manager;

class GroupCommit {
 public:
  /// Starts the committer thread. `manager` must outlive this object and
  /// have deferred auto-fsync enabled (Manager does both when configured
  /// with group_commit under fsync=always).
  explicit GroupCommit(Manager& manager);
  /// Drains every pending waiter (final group fsync) and joins the thread.
  ~GroupCommit();

  GroupCommit(const GroupCommit&) = delete;
  GroupCommit& operator=(const GroupCommit&) = delete;

  /// Invoke `fn` once every WAL record up to `seq` is on stable storage.
  /// Runs inline on the caller when already durable (or seq == 0);
  /// otherwise `fn` fires on the committer thread after the shared fsync.
  /// `fn` must not block and must not call back into GroupCommit.
  void when_durable(std::uint64_t seq, std::function<void()> fn);

  /// Block the caller until `seq` is durable (joins the current group).
  void wait_durable(std::uint64_t seq);

  /// Highest record seq known durable.
  std::uint64_t durable_seq() const;

  /// Highest record seq appended to the WAL (Manager::last_appended_seq).
  /// A writer that just appended under the store's serialization domain can
  /// gate its ack on this — it is >= the seqs of its own records, so the
  /// ack can only be delayed, never released early.
  std::uint64_t appended_seq() const;

  /// Group fsync batches issued / callbacks released. groups() « commits()
  /// is the amortization the durability tests assert.
  std::uint64_t groups() const;
  std::uint64_t commits() const;

 private:
  struct Waiter {
    std::uint64_t seq = 0;
    std::function<void()> fn;  ///< empty for wait_durable() joiners
  };

  void committer_loop();

  Manager& manager_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;     ///< wakes the committer
  std::condition_variable durable_cv_;  ///< wakes wait_durable() callers
  std::vector<Waiter> pending_;
  std::uint64_t durable_seq_ = 0;
  std::uint64_t groups_ = 0;
  std::uint64_t commits_ = 0;
  std::size_t sync_waiters_ = 0;  ///< blocked wait_durable() callers
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace chameleon::durability
