#include "durability/group_commit.hpp"

#include <utility>

#include "durability/manager.hpp"
#include "obs/metrics.hpp"

namespace chameleon::durability {

GroupCommit::GroupCommit(Manager& manager) : manager_(manager) {
  thread_ = std::thread([this] { committer_loop(); });
}

GroupCommit::~GroupCommit() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_one();
  thread_.join();
}

void GroupCommit::when_durable(std::uint64_t seq, std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (seq > durable_seq_ && !stop_) {
      pending_.push_back(Waiter{seq, std::move(fn)});
      work_cv_.notify_one();
      return;
    }
    if (seq > durable_seq_) {
      // Shutdown fallback (no committer to hand off to): make it durable
      // synchronously, then ack inline.
      lock.unlock();
      const std::uint64_t covered = manager_.sync_covering();
      lock.lock();
      if (covered > durable_seq_) durable_seq_ = covered;
      ++commits_;
      lock.unlock();
      fn();
      return;
    }
    ++commits_;
  }
  fn();  // already durable: ack inline on the caller
}

void GroupCommit::wait_durable(std::uint64_t seq) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (seq <= durable_seq_) return;
  if (stop_) {
    lock.unlock();
    const std::uint64_t covered = manager_.sync_covering();
    lock.lock();
    if (covered > durable_seq_) durable_seq_ = covered;
    return;
  }
  ++sync_waiters_;
  work_cv_.notify_one();
  durable_cv_.wait(lock, [&] { return durable_seq_ >= seq || stop_; });
  --sync_waiters_;
  if (durable_seq_ < seq) {
    // Stopped before our group ran: sync ourselves so the contract holds.
    lock.unlock();
    const std::uint64_t covered = manager_.sync_covering();
    lock.lock();
    if (covered > durable_seq_) durable_seq_ = covered;
  }
}

std::uint64_t GroupCommit::durable_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return durable_seq_;
}

std::uint64_t GroupCommit::appended_seq() const {
  return manager_.last_appended_seq();
}

std::uint64_t GroupCommit::groups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return groups_;
}

std::uint64_t GroupCommit::commits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return commits_;
}

void GroupCommit::committer_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // A sync waiter only represents demand while something it could be
      // waiting on is still uncovered; without the appended>durable guard
      // the committer would spin no-op groups between durable_cv_ firing
      // and the woken waiter decrementing sync_waiters_.
      work_cv_.wait(lock, [&] {
        return stop_ || !pending_.empty() ||
               (sync_waiters_ > 0 &&
                manager_.last_appended_seq() > durable_seq_);
      });
      if (stop_ && pending_.empty() && sync_waiters_ == 0) return;
    }

    // One fsync for the whole group: covers every record appended before
    // this instant, including appends that raced in after the wakeup.
    const std::uint64_t covered = manager_.sync_covering();

    std::vector<Waiter> fired;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++groups_;
      // Stable partition by hand: acks must fire in registration order so
      // a pipelined session's responses keep their request order.
      std::vector<Waiter> still;
      still.reserve(pending_.size());
      for (auto& w : pending_) {
        if (w.seq <= covered) {
          fired.push_back(std::move(w));
        } else {
          still.push_back(std::move(w));
        }
      }
      pending_.swap(still);
      commits_ += fired.size();
    }
    // Callbacks fire BEFORE durable_seq_ advances and wait_durable() wakes:
    // a thread that saw wait_durable(appended_seq()) return therefore knows
    // every ack continuation up to that seq has already run — the teardown
    // barrier Server::wait() relies on before releasing reactor state.
    for (auto& w : fired) {
      if (w.fn) w.fn();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (covered > durable_seq_) durable_seq_ = covered;
    }
    durable_cv_.notify_all();
    if (obs::enabled()) {
      obs::metrics()
          .counter("chameleon_wal_group_commits_total", {},
                   "Group-commit fsync batches issued")
          .inc();
      obs::metrics()
          .counter("chameleon_wal_group_commit_acks_total", {},
                   "Acks released by group-commit fsync batches")
          .inc(fired.size());
    }
  }
}

}  // namespace chameleon::durability
