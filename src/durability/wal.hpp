// Write-ahead log for the durability subsystem: versioned, length-prefixed,
// CRC32C-framed records appended on every state mutation, stored in rotating
// segment files. The WAL is a redo log — records describe mutations that
// already applied — replayed on recovery on top of the latest checkpoint.
//
// On-disk layout (all integers little-endian):
//   segment file `wal-<seq:016x>.log`:
//     header  = magic "CHWAL001" (8) | u32 version | u64 segment_seq
//               | u64 first_record_seq | u32 crc32c(of the previous 28 bytes)
//     records = repeated frames: u32 body_len | u32 crc32c(body) | body
//     body    = u8 type | u64 record_seq | type-specific fields
//
// A torn final record (truncated frame or bad CRC in the LAST segment) is
// expected after a crash: replay stops there and reports the truncated tail.
// The same damage in a non-last segment means real corruption and throws.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace chameleon::durability {

inline constexpr char kWalMagic[8] = {'C', 'H', 'W', 'A', 'L', '0', '0', '1'};
inline constexpr std::uint32_t kWalVersion = 1;

/// When appended records reach the platter.
enum class FsyncPolicy : std::uint8_t {
  kNone,      ///< never fsync; page cache only (kill -9 safe, power-loss not)
  kInterval,  ///< fsync every fsync_interval_bytes of appended data
  kAlways,    ///< fsync after every record (power-loss safe)
};

const char* fsync_policy_name(FsyncPolicy policy);
/// Parse "none"/"interval"/"always"; throws std::invalid_argument otherwise.
FsyncPolicy fsync_policy_from_name(const std::string& name);

enum class WalRecordType : std::uint8_t {
  kPutSim = 1,      ///< size-only put: oid, bytes, epoch
  kPutValue = 2,    ///< payload put: oid, epoch, value
  kRemove = 3,      ///< deletion: oid
  kEpoch = 4,       ///< balancing epoch ran: epoch
  kMembership = 5,  ///< server liveness change: server, up
};

/// One decoded WAL record; unused fields are zero for a given type.
struct WalRecord {
  WalRecordType type = WalRecordType::kPutSim;
  std::uint64_t seq = 0;  ///< strictly increasing across segments
  ObjectId oid = 0;
  std::uint64_t bytes = 0;              ///< kPutSim
  Epoch epoch = 0;                      ///< kPutSim/kPutValue/kEpoch
  ServerId server = 0;                  ///< kMembership
  bool up = false;                      ///< kMembership
  std::vector<std::uint8_t> value;      ///< kPutValue payload
};

/// Serialize one record as a framed (len|crc|body) byte string.
std::vector<std::uint8_t> encode_wal_record(const WalRecord& record);

enum class WalDecode {
  kRecord,     ///< a valid record was decoded
  kTruncated,  ///< the buffer ends mid-frame (torn tail candidate)
  kCorrupt,    ///< CRC mismatch or malformed body
};

/// Decode the frame at `data[offset...]`. On kRecord, `*record` is filled
/// and `*next_offset` points past the frame.
WalDecode decode_wal_record(std::span<const std::uint8_t> data,
                            std::size_t offset, WalRecord* record,
                            std::size_t* next_offset);

std::filesystem::path wal_segment_path(const std::filesystem::path& dir,
                                       std::uint64_t segment_seq);

/// All `wal-*.log` segments in `dir`, sorted by segment sequence.
std::vector<std::filesystem::path> list_wal_segments(
    const std::filesystem::path& dir);

/// Segment sequence parsed from a path produced by wal_segment_path.
std::uint64_t wal_segment_seq(const std::filesystem::path& path);

/// Cumulative outcome of replaying the WAL tail.
struct WalReplayStats {
  std::uint64_t records = 0;          ///< valid records delivered
  std::uint64_t segments = 0;         ///< segment files scanned
  std::uint64_t truncated_bytes = 0;  ///< bytes dropped from a torn tail
  bool torn_tail = false;             ///< the last segment ended mid-record
};

/// Read one segment, invoking `fn` per valid record. `last_segment` selects
/// torn-tail tolerance: damage in the last segment truncates (counted in
/// `stats`), damage earlier throws std::runtime_error. Also throws on a bad
/// segment header or a record seq that is not strictly increasing
/// (tracked across calls via `*expected_seq`, 0 = any).
void read_wal_segment(const std::filesystem::path& path, bool last_segment,
                      const std::function<void(const WalRecord&)>& fn,
                      WalReplayStats* stats, std::uint64_t* expected_seq);

/// Appends framed records to the current segment file with the configured
/// fsync policy, rotating to a fresh segment when the size cap is reached.
class WalWriter {
 public:
  /// `dir` must exist. Appending before open_segment() throws.
  WalWriter(std::filesystem::path dir, FsyncPolicy policy,
            std::uint64_t segment_bytes, std::uint64_t fsync_interval_bytes);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Start (or truncate+restart) segment `segment_seq`, whose first record
  /// will carry `first_record_seq`.
  void open_segment(std::uint64_t segment_seq, std::uint64_t first_record_seq);

  /// Assign the next record seq, frame, append, and apply the fsync policy.
  /// Rotates first when the current segment is over the size cap. Returns
  /// the record's sequence number.
  std::uint64_t append(WalRecord record);

  /// Force everything appended so far to stable storage.
  void sync();

  /// Close the current segment. When the policy promises durability
  /// (kInterval/kAlways) any unsynced bytes are fsynced first — a rotation
  /// must never orphan records the policy said were safe.
  void close();

  /// When false, append() skips the per-record/interval fsync and a caller
  /// (the group-commit committer) owns durability via sync(). Rotation and
  /// segment-header syncs still happen. Only meaningful for kAlways.
  void set_auto_fsync(bool on) { auto_fsync_ = on; }

  std::uint64_t segment_seq() const { return segment_seq_; }
  std::uint64_t next_record_seq() const { return next_record_seq_; }
  /// Seq of the most recently appended record (0 = none yet).
  std::uint64_t last_record_seq() const { return next_record_seq_ - 1; }
  void set_next_record_seq(std::uint64_t seq) { next_record_seq_ = seq; }

  // Counters for obs export.
  std::uint64_t records_appended() const { return records_appended_; }
  std::uint64_t bytes_appended() const { return bytes_appended_; }
  std::uint64_t fsyncs() const { return fsyncs_; }
  std::uint64_t rotations() const { return rotations_; }

 private:
  void write_all(const std::uint8_t* data, std::size_t len);
  void fsync_fd();

  std::filesystem::path dir_;
  FsyncPolicy policy_;
  std::uint64_t segment_bytes_;
  std::uint64_t fsync_interval_bytes_;
  int fd_ = -1;
  bool auto_fsync_ = true;
  std::uint64_t segment_seq_ = 0;
  std::uint64_t next_record_seq_ = 1;
  std::uint64_t segment_written_ = 0;    ///< bytes in the current segment
  std::uint64_t unsynced_bytes_ = 0;     ///< since the last fsync
  std::uint64_t records_appended_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t rotations_ = 0;
};

}  // namespace chameleon::durability
