// Full-cluster snapshots for the durability subsystem: everything the data
// path depends on — mapping table, per-server FTL state (erase counts, page
// maps, GC bookkeeping), payload bytes, membership — serialized into one
// atomically-written file. A checkpoint plus the WAL segments after it
// reconstruct the crashed process bit-for-bit (fault::cluster_digest-exact).
//
// On-disk layout: `checkpoint-<seq:016x>.ckpt` =
//   magic "CHCKPT01" (8) | u64 payload_len | payload | u32 crc32c(payload)
// written as temp file + fsync + rename + directory fsync, so a crash leaves
// either the old complete file set or the new one, never a torn snapshot.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "common/types.hpp"

namespace chameleon::core {
class Chameleon;
}

namespace chameleon::durability {

inline constexpr char kCheckpointMagic[8] = {'C', 'H', 'C', 'K',
                                             'P', 'T', '0', '1'};
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Everything a checkpoint records about itself (its payload header).
struct CheckpointMeta {
  std::uint64_t seq = 0;               ///< checkpoint sequence (file name)
  Epoch epoch = 0;                     ///< last balancing epoch that ran
  Nanos now = 0;                       ///< virtual clock at snapshot time
  std::uint64_t wal_segment_seq = 0;   ///< first WAL segment to replay
  std::uint64_t next_record_seq = 0;   ///< first WAL record seq after this
  std::uint64_t digest = 0;            ///< fault::cluster_digest at snapshot
};

std::filesystem::path checkpoint_path(const std::filesystem::path& dir,
                                      std::uint64_t seq);

/// All `checkpoint-*.ckpt` files in `dir`, sorted by sequence (ascending).
std::vector<std::filesystem::path> list_checkpoints(
    const std::filesystem::path& dir);

std::uint64_t checkpoint_file_seq(const std::filesystem::path& path);

/// Snapshot `system` to checkpoint `seq` in `dir`, atomically. The WAL
/// cursor fields tell recovery where replay resumes. Returns the meta as
/// written (digest computed here).
CheckpointMeta save_checkpoint(const std::filesystem::path& dir,
                               std::uint64_t seq, core::Chameleon& system,
                               std::uint64_t wal_segment_seq,
                               std::uint64_t next_record_seq);

/// Restore `system` (freshly constructed with the SAME config as the writer)
/// from the checkpoint at `path`. Throws std::runtime_error on any framing,
/// CRC, config-mismatch or digest-mismatch problem — callers fall back to an
/// older checkpoint. On success the system's table, devices, payloads,
/// membership and clock match the snapshot exactly.
CheckpointMeta load_checkpoint(const std::filesystem::path& path,
                               core::Chameleon& system);

}  // namespace chameleon::durability
