#include "durability/manager.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "core/chameleon.hpp"
#include "durability/group_commit.hpp"
#include "fault/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chameleon::durability {

Manager::Manager(core::Chameleon& system, DurabilityConfig config)
    : system_(system), config_(std::move(config)) {
  if (config_.checkpoint_every_epochs == 0) {
    throw std::invalid_argument(
        "durability: checkpoint_every_epochs must be >= 1");
  }
  if (config_.retain_checkpoints == 0) {
    throw std::invalid_argument("durability: retain_checkpoints must be >= 1");
  }
  wal_ = std::make_unique<WalWriter>(config_.dir, config_.fsync,
                                     config_.segment_bytes,
                                     config_.fsync_interval_bytes);
  if (config_.group_commit && config_.fsync == FsyncPolicy::kAlways) {
    // The committer thread owns durability; appends stay in page cache
    // until the group fsync (acks gate on GroupCommit::when_durable).
    wal_->set_auto_fsync(false);
  }
}

Manager::~Manager() {
  group_commit_.reset();  // drains pending waiters with a final group fsync
  if (opened_) system_.attach_journal(nullptr);
  if (wal_) {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    wal_->sync();
  }
}

RecoveryReport Manager::open() {
  if (opened_) throw std::runtime_error("durability: open() called twice");
  const auto t0 = std::chrono::steady_clock::now();
  std::filesystem::create_directories(config_.dir);

  RecoveryReport report;
  if (obs::enabled()) {
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kRecoveryStart)) {
      obs::TraceEvent e;
      e.type = obs::TraceType::kRecoveryStart;
      sink.record(std::move(e));
    }
  }

  // 1. Newest valid checkpoint wins; corrupt ones are skipped (loudly via
  // the report) and recovery falls back to the next older snapshot.
  CheckpointMeta loaded;
  const std::vector<std::filesystem::path> checkpoints =
      list_checkpoints(config_.dir);
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    try {
      loaded = load_checkpoint(*it, system_);
      report.checkpoint_loaded = true;
      report.checkpoint_seq = loaded.seq;
      report.checkpoint_epoch = loaded.epoch;
      break;
    } catch (const std::runtime_error&) {
      ++report.corrupt_checkpoints;
    }
  }

  // 2. Replay the WAL tail: every segment the checkpoint does not cover,
  // in order. A torn final record truncates; damage earlier throws.
  std::uint64_t expected_seq =
      report.checkpoint_loaded ? loaded.next_record_seq : 0;
  WalReplayStats stats;
  const std::vector<std::filesystem::path> segments =
      list_wal_segments(config_.dir);
  std::vector<std::filesystem::path> to_replay;
  for (const auto& path : segments) {
    if (report.checkpoint_loaded &&
        wal_segment_seq(path) < loaded.wal_segment_seq) {
      continue;  // already folded into the checkpoint
    }
    to_replay.push_back(path);
  }
  for (std::size_t i = 0; i < to_replay.size(); ++i) {
    const bool last = i + 1 == to_replay.size();
    read_wal_segment(
        to_replay[i], last,
        [this](const WalRecord& record) { replay_record(record); }, &stats,
        &expected_seq);
  }
  report.replayed_records = stats.records;
  report.segments_scanned = stats.segments;
  report.truncated_bytes = stats.truncated_bytes;
  report.torn_tail = stats.torn_tail;
  report.recovered = report.checkpoint_loaded || stats.records > 0;

  if (obs::enabled()) {
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kRecoveryReplay)) {
      obs::TraceEvent e;
      e.type = obs::TraceType::kRecoveryReplay;
      e.a = stats.records;
      e.b = stats.truncated_bytes;
      sink.record(std::move(e));
    }
  }

  // 3. Fresh barrier: rotate past everything replayed, snapshot the
  // recovered state, prune. From here the directory is self-consistent
  // even if the old tail was torn.
  const std::uint64_t next_segment =
      segments.empty() ? 1 : wal_segment_seq(segments.back()) + 1;
  const std::uint64_t next_record = expected_seq == 0 ? 1 : expected_seq;
  wal_->set_next_record_seq(next_record);
  wal_->open_segment(next_segment, next_record);
  last_appended_seq_.store(next_record - 1, std::memory_order_release);
  checkpoint_seq_ = report.checkpoint_loaded ? loaded.seq : 0;
  if (report.checkpoint_loaded) {
    retained_.emplace_back(loaded.seq, loaded.wal_segment_seq);
  }
  checkpoint();

  report.digest = fault::cluster_digest(system_.store());
  report.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  recovery_ = report;

  system_.attach_journal(this);
  opened_ = true;
  if (config_.group_commit && config_.fsync == FsyncPolicy::kAlways) {
    group_commit_ = std::make_unique<GroupCommit>(*this);
  }

  if (obs::enabled()) {
    obs::metrics()
        .counter("chameleon_recovery_replayed_records_total", {},
                 "WAL records re-applied during crash recovery")
        .inc(report.replayed_records);
    if (report.torn_tail) {
      obs::metrics()
          .counter("chameleon_recovery_truncated_tail_total", {},
                   "Recoveries that found (and truncated) a torn WAL tail")
          .inc();
    }
    obs::metrics()
        .gauge("chameleon_recovery_duration_seconds", {},
               "Wall-clock duration of the last crash recovery")
        .set(report.duration_seconds);
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kRecoveryDone)) {
      obs::TraceEvent e;
      e.type = obs::TraceType::kRecoveryDone;
      e.epoch = report.checkpoint_epoch;
      e.a = report.checkpoint_seq;
      e.value = report.duration_seconds;
      e.has_value = true;
      sink.record(std::move(e));
    }
  }
  return report;
}

void Manager::replay_record(const WalRecord& record) {
  // The journal is not attached during replay, so nothing re-logs; records
  // apply through the same store/system paths that produced them.
  switch (record.type) {
    case WalRecordType::kPutSim:
      system_.store().put(record.oid, record.bytes, record.epoch);
      break;
    case WalRecordType::kPutValue:
      system_.store().enable_payloads();
      system_.store().put_value(record.oid, record.value, record.epoch);
      break;
    case WalRecordType::kRemove:
      system_.store().remove(record.oid);
      break;
    case WalRecordType::kEpoch:
      // Best-effort for checkpoint cadences > 1: re-runs the balancer at
      // the recorded boundary. With cadence 1 (the default) no kEpoch
      // record ever survives past its own barrier checkpoint.
      system_.advance_time(static_cast<Nanos>(record.epoch) *
                           system_.config().epoch_length);
      break;
    case WalRecordType::kMembership:
      if (system_.supervisor() != nullptr) {
        if (record.up) {
          system_.supervisor()->rejoin_server(record.server, system_.now());
        } else {
          system_.supervisor()->restore_failed(record.server);
        }
      }
      break;
  }
}

CheckpointMeta Manager::checkpoint() {
  // Barrier order matters: (1) everything logged so far reaches the disk,
  // (2) the WAL rotates so the snapshot's cursor points at a fresh segment,
  // (3) the snapshot commits atomically, (4) old files become garbage.
  // Only the WAL half needs wal_mutex_ (the committer thread may fsync
  // concurrently); the snapshot itself runs on the store thread, which is
  // the only appender.
  std::uint64_t wal_segment = 0;
  std::uint64_t next_record = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    wal_->sync();
    if (opened_ || records_since_checkpoint_ > 0) {
      wal_->open_segment(wal_->segment_seq() + 1, wal_->next_record_seq());
    }
    wal_segment = wal_->segment_seq();
    next_record = wal_->next_record_seq();
  }
  const std::uint64_t seq = ++checkpoint_seq_;
  const CheckpointMeta meta =
      save_checkpoint(config_.dir, seq, system_, wal_segment, next_record);
  retained_.emplace_back(seq, meta.wal_segment_seq);
  ++checkpoints_written_;
  const std::uint64_t records = records_since_checkpoint_;
  records_since_checkpoint_ = 0;
  prune();
  if (obs::enabled()) {
    obs::metrics()
        .counter("chameleon_checkpoints_total", {},
                 "Full-cluster durability snapshots written")
        .inc();
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kCheckpoint)) {
      obs::TraceEvent e;
      e.type = obs::TraceType::kCheckpoint;
      e.epoch = meta.epoch;
      e.a = meta.seq;
      e.b = records;
      sink.record(std::move(e));
    }
  }
  return meta;
}

void Manager::prune() {
  while (retained_.size() > config_.retain_checkpoints) {
    retained_.erase(retained_.begin());
  }
  const std::uint64_t keep_ckpt = retained_.front().first;
  const std::uint64_t keep_wal = retained_.front().second;
  for (const auto& path : list_checkpoints(config_.dir)) {
    if (checkpoint_file_seq(path) < keep_ckpt) {
      std::filesystem::remove(path);
    }
  }
  for (const auto& path : list_wal_segments(config_.dir)) {
    if (wal_segment_seq(path) < keep_wal) {
      std::filesystem::remove(path);
    }
  }
}

void Manager::append(WalRecord record) {
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    seq = wal_->append(std::move(record));
    // Counter reads stay under the lock: fsyncs() moves on the committer
    // thread in group-commit mode.
    export_metrics();
  }
  last_appended_seq_.store(seq, std::memory_order_release);
  ++records_since_checkpoint_;
}

void Manager::export_metrics() {
  if (!obs::enabled()) return;
  obs::metrics()
      .counter("chameleon_wal_records_total", {},
               "WAL records appended since process start")
      .inc();
  obs::metrics()
      .gauge("chameleon_wal_bytes_appended", {},
             "WAL bytes appended since process start")
      .set(static_cast<double>(wal_->bytes_appended()));
  obs::metrics()
      .gauge("chameleon_wal_fsyncs", {},
             "WAL fsync calls since process start")
      .set(static_cast<double>(wal_->fsyncs()));
}

void Manager::on_put_sim(ObjectId oid, std::uint64_t bytes, Epoch epoch) {
  WalRecord record;
  record.type = WalRecordType::kPutSim;
  record.oid = oid;
  record.bytes = bytes;
  record.epoch = epoch;
  append(std::move(record));
}

void Manager::on_put_value(ObjectId oid, std::span<const std::uint8_t> value,
                           Epoch epoch) {
  WalRecord record;
  record.type = WalRecordType::kPutValue;
  record.oid = oid;
  record.epoch = epoch;
  record.value.assign(value.begin(), value.end());
  append(std::move(record));
}

void Manager::on_remove(ObjectId oid) {
  WalRecord record;
  record.type = WalRecordType::kRemove;
  record.oid = oid;
  append(std::move(record));
}

void Manager::on_epoch(Epoch epoch) {
  WalRecord record;
  record.type = WalRecordType::kEpoch;
  record.epoch = epoch;
  append(std::move(record));
  if (epoch % config_.checkpoint_every_epochs == 0) checkpoint();
}

void Manager::on_membership(ServerId server, bool up) {
  WalRecord record;
  record.type = WalRecordType::kMembership;
  record.server = server;
  record.up = up;
  append(std::move(record));
}

}  // namespace chameleon::durability
