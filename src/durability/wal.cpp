#include "durability/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/binary_io.hpp"
#include "common/crc32c.hpp"

namespace chameleon::durability {

namespace {

constexpr std::size_t kFrameHeader = 8;    // u32 len | u32 crc
constexpr std::size_t kSegmentHeader = 8 + 4 + 8 + 8 + 4;

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("wal: cannot open " + path.string());
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

const char* fsync_policy_name(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

FsyncPolicy fsync_policy_from_name(const std::string& name) {
  if (name == "none") return FsyncPolicy::kNone;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "always") return FsyncPolicy::kAlways;
  throw std::invalid_argument("unknown fsync policy: " + name);
}

std::vector<std::uint8_t> encode_wal_record(const WalRecord& record) {
  std::vector<std::uint8_t> body;
  BinaryWriter w(body);
  w.u8(static_cast<std::uint8_t>(record.type));
  w.u64(record.seq);
  switch (record.type) {
    case WalRecordType::kPutSim:
      w.u64(record.oid);
      w.u64(record.bytes);
      w.u32(record.epoch);
      break;
    case WalRecordType::kPutValue:
      w.u64(record.oid);
      w.u32(record.epoch);
      w.u32(static_cast<std::uint32_t>(record.value.size()));
      w.bytes(record.value);
      break;
    case WalRecordType::kRemove:
      w.u64(record.oid);
      break;
    case WalRecordType::kEpoch:
      w.u32(record.epoch);
      break;
    case WalRecordType::kMembership:
      w.u32(record.server);
      w.u8(record.up ? 1 : 0);
      break;
  }
  std::vector<std::uint8_t> frame;
  BinaryWriter f(frame);
  f.u32(static_cast<std::uint32_t>(body.size()));
  f.u32(crc32c(std::span<const std::uint8_t>(body)));
  f.bytes(body);
  return frame;
}

WalDecode decode_wal_record(std::span<const std::uint8_t> data,
                            std::size_t offset, WalRecord* record,
                            std::size_t* next_offset) {
  if (offset + kFrameHeader > data.size()) return WalDecode::kTruncated;
  BinaryReader header(data.subspan(offset, kFrameHeader));
  const std::uint32_t len = header.u32();
  const std::uint32_t crc = header.u32();
  // An absurd length is corruption, not truncation: without this cap a
  // flipped high bit in `len` would misreport mid-log damage as a torn tail.
  constexpr std::uint32_t kMaxBody = 64u << 20;
  if (len < 9 || len > kMaxBody) return WalDecode::kCorrupt;
  if (offset + kFrameHeader + len > data.size()) return WalDecode::kTruncated;
  const auto body = data.subspan(offset + kFrameHeader, len);
  if (crc32c(body) != crc) return WalDecode::kCorrupt;
  try {
    BinaryReader r(body);
    WalRecord rec;
    const std::uint8_t type = r.u8();
    rec.seq = r.u64();
    switch (type) {
      case 1:
        rec.type = WalRecordType::kPutSim;
        rec.oid = r.u64();
        rec.bytes = r.u64();
        rec.epoch = r.u32();
        break;
      case 2: {
        rec.type = WalRecordType::kPutValue;
        rec.oid = r.u64();
        rec.epoch = r.u32();
        const std::uint32_t vlen = r.u32();
        const auto view = r.bytes(vlen);
        rec.value.assign(view.begin(), view.end());
        break;
      }
      case 3:
        rec.type = WalRecordType::kRemove;
        rec.oid = r.u64();
        break;
      case 4:
        rec.type = WalRecordType::kEpoch;
        rec.epoch = r.u32();
        break;
      case 5:
        rec.type = WalRecordType::kMembership;
        rec.server = r.u32();
        rec.up = r.u8() != 0;
        break;
      default:
        return WalDecode::kCorrupt;
    }
    if (!r.done()) return WalDecode::kCorrupt;  // trailing junk in the body
    *record = std::move(rec);
    *next_offset = offset + kFrameHeader + len;
    return WalDecode::kRecord;
  } catch (const std::runtime_error&) {
    return WalDecode::kCorrupt;  // body shorter than its type demands
  }
}

std::filesystem::path wal_segment_path(const std::filesystem::path& dir,
                                       std::uint64_t segment_seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.log",
                static_cast<unsigned long long>(segment_seq));
  return dir / name;
}

std::vector<std::filesystem::path> list_wal_segments(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> segments;
  if (!std::filesystem::exists(dir)) return segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 4 + 16 + 4 && name.starts_with("wal-") &&
        name.ends_with(".log")) {
      segments.push_back(entry.path());
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const auto& a, const auto& b) {
              return wal_segment_seq(a) < wal_segment_seq(b);
            });
  return segments;
}

std::uint64_t wal_segment_seq(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  return std::stoull(name.substr(4, 16), nullptr, 16);
}

void read_wal_segment(const std::filesystem::path& path, bool last_segment,
                      const std::function<void(const WalRecord&)>& fn,
                      WalReplayStats* stats, std::uint64_t* expected_seq) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  const std::span<const std::uint8_t> data(bytes);

  if (bytes.size() < kSegmentHeader) {
    // A header torn mid-write can only happen to the newest segment.
    if (last_segment) {
      stats->truncated_bytes += bytes.size();
      stats->torn_tail = bytes.size() > 0;
      ++stats->segments;
      return;
    }
    throw std::runtime_error("wal: truncated segment header in " +
                             path.string());
  }
  BinaryReader header(data.subspan(0, kSegmentHeader));
  char magic[8];
  for (char& c : magic) c = static_cast<char>(header.u8());
  if (std::memcmp(magic, kWalMagic, 8) != 0) {
    throw std::runtime_error("wal: bad magic in " + path.string());
  }
  const std::uint32_t version = header.u32();
  if (version != kWalVersion) {
    throw std::runtime_error("wal: unsupported version " +
                             std::to_string(version) + " in " + path.string());
  }
  const std::uint64_t segment_seq = header.u64();
  header.u64();  // first_record_seq: informational; seq chain is authoritative
  const std::uint32_t header_crc =
      crc32c(data.subspan(0, kSegmentHeader - 4));
  BinaryReader crc_reader(data.subspan(kSegmentHeader - 4, 4));
  if (crc_reader.u32() != header_crc) {
    if (last_segment) {
      stats->truncated_bytes += bytes.size();
      stats->torn_tail = true;
      ++stats->segments;
      return;
    }
    throw std::runtime_error("wal: segment header CRC mismatch in " +
                             path.string());
  }
  if (segment_seq != wal_segment_seq(path)) {
    throw std::runtime_error("wal: segment seq does not match filename: " +
                             path.string());
  }

  ++stats->segments;
  std::size_t offset = kSegmentHeader;
  while (offset < bytes.size()) {
    WalRecord record;
    std::size_t next = 0;
    const WalDecode outcome = decode_wal_record(data, offset, &record, &next);
    if (outcome != WalDecode::kRecord) {
      // Any invalid frame in the LAST segment is treated as a torn tail:
      // after a kill -9 the final append may be partial, and nothing valid
      // can follow a break in the byte stream. The same break in an older
      // segment is silent data loss — fail loudly instead.
      if (last_segment) {
        stats->truncated_bytes += bytes.size() - offset;
        stats->torn_tail = true;
        return;
      }
      throw std::runtime_error(
          "wal: corrupt record mid-log (segment " + path.string() +
          ", offset " + std::to_string(offset) + ")");
    }
    if (*expected_seq != 0 && record.seq != *expected_seq) {
      throw std::runtime_error(
          "wal: record sequence broken in " + path.string() + ": expected " +
          std::to_string(*expected_seq) + ", got " +
          std::to_string(record.seq));
    }
    *expected_seq = record.seq + 1;
    fn(record);
    ++stats->records;
    offset = next;
  }
}

WalWriter::WalWriter(std::filesystem::path dir, FsyncPolicy policy,
                     std::uint64_t segment_bytes,
                     std::uint64_t fsync_interval_bytes)
    : dir_(std::move(dir)),
      policy_(policy),
      segment_bytes_(segment_bytes),
      fsync_interval_bytes_(fsync_interval_bytes) {}

WalWriter::~WalWriter() { close(); }

void WalWriter::open_segment(std::uint64_t segment_seq,
                             std::uint64_t first_record_seq) {
  close();
  const std::filesystem::path path = wal_segment_path(dir_, segment_seq);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) sys_fail("wal: open " + path.string());
  segment_seq_ = segment_seq;
  segment_written_ = 0;
  unsynced_bytes_ = 0;

  std::vector<std::uint8_t> header;
  BinaryWriter w(header);
  for (const char c : kWalMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kWalVersion);
  w.u64(segment_seq);
  w.u64(first_record_seq);
  w.u32(crc32c(std::span<const std::uint8_t>(header).first(28)));
  write_all(header.data(), header.size());
  // The header must be stable before any record relies on it.
  if (policy_ != FsyncPolicy::kNone) fsync_fd();
}

std::uint64_t WalWriter::append(WalRecord record) {
  if (fd_ < 0) throw std::runtime_error("wal: append before open_segment");
  if (segment_written_ >= segment_bytes_) {
    // Rotate BEFORE the record so a segment never splits a frame.
    ++rotations_;
    open_segment(segment_seq_ + 1, next_record_seq_);
  }
  record.seq = next_record_seq_++;
  const std::vector<std::uint8_t> frame = encode_wal_record(record);
  write_all(frame.data(), frame.size());
  segment_written_ += frame.size();
  bytes_appended_ += frame.size();
  unsynced_bytes_ += frame.size();
  ++records_appended_;
  if (auto_fsync_) {
    switch (policy_) {
      case FsyncPolicy::kAlways:
        fsync_fd();
        break;
      case FsyncPolicy::kInterval:
        if (unsynced_bytes_ >= fsync_interval_bytes_) fsync_fd();
        break;
      case FsyncPolicy::kNone:
        break;
    }
  }
  return record.seq;
}

void WalWriter::sync() {
  if (fd_ >= 0 && unsynced_bytes_ > 0) fsync_fd();
}

void WalWriter::close() {
  if (fd_ < 0) return;
  // A durable policy must not drop bytes at a segment boundary: rotation
  // (and group-commit mode, which defers per-record fsyncs) can leave
  // unsynced records in the outgoing segment, and sync() after rotation
  // only reaches the NEW fd.
  if (unsynced_bytes_ > 0 && policy_ != FsyncPolicy::kNone) fsync_fd();
  ::close(fd_);
  fd_ = -1;
}

void WalWriter::write_all(const std::uint8_t* data, std::size_t len) {
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd_, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("wal: write");
    }
    written += static_cast<std::size_t>(n);
  }
}

void WalWriter::fsync_fd() {
  if (::fsync(fd_) != 0) sys_fail("wal: fsync");
  unsynced_bytes_ = 0;
  ++fsyncs_;
}

}  // namespace chameleon::durability
