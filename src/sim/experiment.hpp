// Experiment harness: Table IV's five evaluated schemes, plus the knobs
// that size the cluster and pace the balancer. run_experiment() replays one
// (workload, scheme) pair and returns everything the paper's figures plot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/edm.hpp"
#include "baselines/hybrid_rep_ec.hpp"
#include "baselines/swans.hpp"
#include "core/balancer.hpp"
#include "core/options.hpp"
#include "meta/mapping_table.hpp"
#include "workload/request.hpp"

namespace chameleon::sim {

/// Table IV test schemes. EDM and Chameleon are evaluated under a single
/// fixed redundancy scheme each (the paper pairs them with EC for the wear
/// figures and REP for the performance figures), hence the -Rep/-Ec pairs.
enum class Scheme {
  kRepBaseline,    ///< 3-way replication, no balancing
  kEcBaseline,     ///< RS(6,4), no balancing
  kRepEcBaseline,  ///< hybrid: REP for new data, eager EC for cold data
  kEdmRep,         ///< EDM migration balancer over REP
  kEdmEc,          ///< EDM migration balancer over EC
  kSwansEc,        ///< SWANS write-intensity balancer over EC (extension)
  kChameleonRep,   ///< Chameleon (ARPT+HCDS+EWO), initial policy REP
  kChameleonEc,    ///< Chameleon (ARPT+HCDS+EWO), initial policy EC
};

const char* scheme_name(Scheme s);
meta::RedState initial_scheme_of(Scheme s);
bool scheme_balances(Scheme s);

struct ExperimentConfig {
  std::string workload = "ycsb-zipf";
  Scheme scheme = Scheme::kChameleonEc;
  std::uint32_t servers = 50;
  double scale = 0.1;         ///< CHAMELEON_SCALE; 1.0 = paper volumes
  std::uint64_t seed = 42;
  /// SSDs are sized so the initial scheme's footprint fills this fraction
  /// of the host-visible space (over-provisioning stays at Table II's 15%).
  double target_utilization = 0.85;
  Nanos epoch_length = 1 * kHour;
  std::uint32_t ring_vnodes = 128;
  core::ChameleonOptions chameleon;
  baselines::EdmOptions edm;
  baselines::HybridOptions hybrid;
  baselines::SwansOptions swans;
  bool collect_timeline = true;  ///< keep Chameleon per-epoch snapshots
  /// Heat-tagged hot/cold SSD write streams (see KvConfig::multi_stream).
  bool multi_stream = false;
  /// Worker threads for per-device flash work within this experiment
  /// (sim/shard_executor). 1 = classic sequential stepping; any value
  /// produces bit-identical results (state_digest, metrics, percentiles) —
  /// see docs/PARALLELISM.md for the determinism argument.
  std::uint32_t workers = 1;
  /// Requests between drain fences when workers > 1 (latency resolution
  /// batching; no effect on results, only on parallelism granularity).
  std::uint32_t drain_batch = 1024;
};

struct ExperimentResult {
  std::string workload;
  Scheme scheme = Scheme::kEcBaseline;
  std::uint32_t servers = 0;

  // Wear (Figs 1, 4, 5).
  std::vector<std::uint64_t> erase_counts;  ///< per server
  double erase_mean = 0.0;
  double erase_stddev = 0.0;
  std::uint64_t total_erases = 0;

  // Performance (Figs 6, 7).
  double write_amplification = 1.0;
  Nanos avg_device_write_latency = 0;
  /// Client-visible put latency percentiles (fan-out max + network).
  Nanos put_latency_p50 = 0;
  Nanos put_latency_p99 = 0;

  // Volumes.
  std::uint64_t requests = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t load_writes = 0;  ///< read-before-write warm misses
  std::uint64_t network_bytes_total = 0;
  std::uint64_t migration_bytes = 0;
  std::uint64_t conversion_bytes = 0;
  std::uint64_t swap_bytes = 0;

  meta::StateCensus final_census;
  std::vector<core::EpochSnapshot> chameleon_timeline;  ///< Fig 8

  /// fault::cluster_digest over the final cluster state — the cross-mode
  /// equivalence oracle: equal configs must yield equal digests at any
  /// worker count.
  std::uint64_t state_digest = 0;

  double wall_seconds = 0.0;

  double erase_cv() const {
    return erase_mean > 0.0 ? erase_stddev / erase_mean : 0.0;
  }
};

/// Replay `config.workload` through a fresh cluster under `config.scheme`.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Replay a caller-provided stream (e.g. a real MSR trace) instead of a
/// named preset; `dataset_bytes` sizes the SSDs.
ExperimentResult run_experiment_on(const ExperimentConfig& config,
                                   workload::WorkloadStream& stream,
                                   std::uint64_t dataset_bytes);

}  // namespace chameleon::sim
