// Sharded parallel simulation engine: runs ONE experiment's per-device flash
// work across worker threads while staying byte-for-byte identical to
// sequential mode (the Ceph-OSD-shard / DINOMO-worker shape).
//
// Servers are partitioned into shards (server % workers); each shard owns a
// worker thread with a FIFO inbox the coordinator publishes device closures
// into. A simulation batch is three barriered phases:
//
//   A. coordinator: every logical decision (placement, mapping table, extent
//      allocation, network accounting) in request order — identical to
//      sequential mode by construction — emitting physical closures into the
//      per-shard outboxes;
//   B. shards: execute each server's closures in submission order (FTL
//      programs/reads/trims + GC), concurrently across shards;
//   C. drain fence: coordinator waits for all shards, folds completion
//      journals into a (server-id, seq)-ordered drain log, and resolves
//      client-visible op latencies in submission order.
//
// Control-plane sections (balancer epochs, fault injector, supervisor) run
// between a drain fence and resume, with the executor *bypassed*, so they
// execute fully inline exactly as sequential mode would. See
// docs/PARALLELISM.md for the determinism argument.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/device_exec.hpp"

namespace chameleon::sim {

/// One completed device closure, for the phase-ordering property tests: the
/// drain log is the concatenation of per-shard journals merged into
/// (server, seq) order, so per-server execution order is auditable.
struct DrainRecord {
  ServerId server = 0;
  std::uint64_t seq = 0;  ///< per-server submission sequence number
};

class ShardExecutor final : public cluster::DeviceExecutor {
 public:
  struct Options {
    std::size_t workers = 2;        ///< shard / worker-thread count (>= 1)
    std::size_t publish_chunk = 32; ///< closures buffered per shard before
                                    ///< the queue lock is taken
    bool keep_drain_log = false;    ///< record DrainRecords (tests only)
  };

  /// Does NOT attach itself; callers pair it with
  /// cluster.attach_executor(&exec) so tests can compose freely.
  ShardExecutor(cluster::Cluster& cluster, const Options& options);
  ~ShardExecutor() override;

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  // --- DeviceExecutor ---
  bool deferrable(const cluster::FlashServer& server) const override;
  void defer(cluster::FlashServer& server, std::function<Nanos()> fn,
             bool latency_counts) override;
  bool engaged() const override { return !bypassed_; }
  void group_begin() override;
  void group_end(Nanos inline_max) override;
  void op_begin() override;
  std::int64_t op_end(Nanos inline_latency,
                      std::function<void(Nanos)> on_resolved) override;
  void op_abort() override;

  // --- coordinator-side control ---

  /// Barrier: publish every buffered closure, wait until all shards go idle,
  /// rethrow the first shard exception (if any), then resolve every closed
  /// op in submission order (invoking on_resolved callbacks).
  void drain();

  /// Resolved latency of an op token; valid after the drain that covered it
  /// and until the next op_begin.
  Nanos resolved_latency(std::int64_t token) const;

  /// Bypass window: control-plane code runs fully inline while bypassed
  /// (deferrable() == false for every server). Must only be flipped when the
  /// executor is drained.
  void set_bypassed(bool on);
  bool bypassed() const { return bypassed_; }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(ServerId server) const {
    return server % shards_.size();
  }

  /// Closures executed since construction (all shards, post-drain only).
  std::uint64_t executed_count() const;

  /// The (server, seq)-merged completion journal of every drain so far.
  /// Empty unless Options::keep_drain_log.
  const std::vector<DrainRecord>& drain_log() const { return drain_log_; }

 private:
  struct Task {
    std::function<Nanos()> fn;
    Nanos* slot = nullptr;  ///< latency destination (nullptr: discard)
    ServerId server = 0;
    std::uint64_t seq = 0;
  };

  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;        ///< work arrived / stopping
    std::condition_variable idle_cv;   ///< queue empty and not busy
    std::deque<Task> queue;
    std::vector<DrainRecord> journal;  ///< completed (server, seq), in
                                       ///< execution order
    std::uint64_t executed = 0;
    bool busy = false;
    bool stopping = false;
    std::exception_ptr error;
    std::thread thread;
    /// Coordinator-local buffer; moved into `queue` under the mutex every
    /// `publish_chunk` closures (amortizes lock traffic).
    std::vector<Task> pending;
  };

  /// One client-visible op: inline latency + fan-out groups of slots.
  struct OpRecord {
    Nanos inline_latency = 0;
    std::function<void(Nanos)> on_resolved;
    /// (first slot index, count, inline max) per group.
    struct Group {
      std::size_t first = 0;
      std::size_t count = 0;
      Nanos inline_max = 0;
    };
    std::vector<Group> groups;
    Nanos resolved = 0;
    bool closed = false;
  };

  void worker_loop(Shard& shard);
  void publish(Shard& shard);
  void recycle_if_resolved();

  cluster::Cluster& cluster_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Coordinator-only state (no locking needed).
  /// Slots live in a deque: push_back never moves existing elements, so
  /// shard threads may write through their Nanos* while the coordinator
  /// appends (happens-before established by the shard queue mutex on
  /// publish and by the idle handshake on drain).
  std::deque<Nanos> slots_;
  std::deque<OpRecord> ops_;
  std::int64_t first_token_ = 0;
  std::vector<std::uint64_t> next_seq_;  ///< per server
  bool op_open_ = false;
  bool group_open_ = false;
  OpRecord::Group current_group_;
  bool bypassed_ = false;
  bool synced_ = true;             ///< every deferred closure drained
  std::size_t resolve_cursor_ = 0; ///< first unresolved op index
  std::vector<DrainRecord> drain_log_;
  std::vector<DrainRecord> merge_scratch_;
};

}  // namespace chameleon::sim
