// Plain-text table / CSV rendering for the experiment harnesses, so each
// bench binary prints the same rows and series the paper's figures plot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace chameleon::sim {

/// Minimal aligned-column text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One-line summary of an experiment (workload, scheme, wear, perf).
std::string summary_line(const ExperimentResult& r);

/// Write per-server erase counts as CSV (server,erases), sorted ascending —
/// the series behind Fig 1.
void write_erase_distribution_csv(const ExperimentResult& r,
                                  const std::string& path);

/// Append one experiment as a CSV row (creates the file with a header when
/// absent); used by all benches for machine-readable output.
void append_result_csv(const ExperimentResult& r, const std::string& path);

}  // namespace chameleon::sim
