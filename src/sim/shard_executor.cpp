#include "sim/shard_executor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace chameleon::sim {

ShardExecutor::ShardExecutor(cluster::Cluster& cluster, const Options& options)
    : cluster_(cluster), options_(options) {
  const std::size_t workers = std::max<std::size_t>(1, options.workers);
  options_.workers = workers;
  options_.publish_chunk = std::max<std::size_t>(1, options.publish_chunk);
  next_seq_.assign(cluster.size(), 0);
  shards_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, s = shard.get()] { worker_loop(*s); });
  }
}

ShardExecutor::~ShardExecutor() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->stopping = true;
  }
  for (auto& shard : shards_) shard->cv.notify_all();
  for (auto& shard : shards_) shard->thread.join();
}

bool ShardExecutor::deferrable(const cluster::FlashServer& server) const {
  if (bypassed_) return false;
  // Servers whose device ops can throw run inline so exceptions fire at the
  // same point in the op stream as sequential mode: armed fault injection
  // (ReadFault/WriteFault) and wear-out modeling (DeviceWornOut). Both only
  // change state at drain fences, so this answer is stable between fences.
  const auto& ftl = server.log().ftl();
  return !ftl.faults_armed() && ftl.config().max_pe_cycles == 0;
}

void ShardExecutor::defer(cluster::FlashServer& server,
                          std::function<Nanos()> fn, bool latency_counts) {
  assert(!bypassed_ && "defer() while bypassed");
  Nanos* slot = nullptr;
  if (latency_counts && group_open_) {
    slots_.push_back(0);
    slot = &slots_.back();
    ++current_group_.count;
  }
  const ServerId id = server.id();
  Shard& shard = *shards_[shard_of(id)];
  shard.pending.push_back(
      Task{std::move(fn), slot, id, next_seq_[id]++});
  synced_ = false;
  if (shard.pending.size() >= options_.publish_chunk) publish(shard);
}

void ShardExecutor::group_begin() {
  assert(!group_open_ && "nested fan-out group");
  group_open_ = true;
  current_group_ = OpRecord::Group{slots_.size(), 0, 0};
}

void ShardExecutor::group_end(Nanos inline_max) {
  if (!group_open_) return;
  group_open_ = false;
  current_group_.inline_max = inline_max;
  if (op_open_ && (current_group_.count > 0 || inline_max > 0)) {
    ops_.back().groups.push_back(current_group_);
  }
  // Outside an op (e.g. a repair helper called while engaged) the group's
  // latency has no consumer; the closures still run, the max is dropped.
}

void ShardExecutor::op_begin() {
  assert(!op_open_ && "nested op scope");
  recycle_if_resolved();
  ops_.emplace_back();
  op_open_ = true;
}

std::int64_t ShardExecutor::op_end(Nanos inline_latency,
                                   std::function<void(Nanos)> on_resolved) {
  if (!op_open_) return -1;
  assert(!group_open_ && "op closed with an open group");
  OpRecord& op = ops_.back();
  op.inline_latency = inline_latency;
  op.on_resolved = std::move(on_resolved);
  op.closed = true;
  op_open_ = false;
  return first_token_ + static_cast<std::int64_t>(ops_.size()) - 1;
}

void ShardExecutor::op_abort() {
  if (!op_open_) return;
  group_open_ = false;
  OpRecord& op = ops_.back();
  op.groups.clear();
  op.closed = true;  // resolves to 0; the token is never handed out
  op_open_ = false;
}

void ShardExecutor::publish(Shard& shard) {
  if (shard.pending.empty()) return;
  {
    std::lock_guard lock(shard.mutex);
    for (auto& task : shard.pending) shard.queue.push_back(std::move(task));
  }
  shard.cv.notify_one();
  shard.pending.clear();
}

void ShardExecutor::worker_loop(Shard& shard) {
  std::deque<Task> batch;
  for (;;) {
    {
      std::unique_lock lock(shard.mutex);
      shard.cv.wait(lock,
                    [&shard] { return shard.stopping || !shard.queue.empty(); });
      if (shard.queue.empty()) {
        // stopping and drained
        shard.idle_cv.notify_all();
        return;
      }
      batch.swap(shard.queue);
      shard.busy = true;
    }
    for (Task& task : batch) {
      Nanos latency = 0;
      try {
        latency = task.fn();
      } catch (...) {
        std::lock_guard lock(shard.mutex);
        if (!shard.error) shard.error = std::current_exception();
      }
      if (task.slot != nullptr) *task.slot = latency;
      task.fn = nullptr;  // release captured plans promptly
    }
    {
      std::lock_guard lock(shard.mutex);
      shard.executed += batch.size();
      if (options_.keep_drain_log) {
        for (const Task& task : batch) {
          shard.journal.push_back(DrainRecord{task.server, task.seq});
        }
      }
      shard.busy = false;
      if (shard.queue.empty()) shard.idle_cv.notify_all();
    }
    batch.clear();
  }
}

void ShardExecutor::drain() {
  assert(!op_open_ && "drain() inside an op scope");
  for (auto& shard : shards_) publish(*shard);

  std::exception_ptr error;
  merge_scratch_.clear();
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    shard->idle_cv.wait(
        lock, [&] { return shard->queue.empty() && !shard->busy; });
    if (shard->error && !error) {
      error = shard->error;
      shard->error = nullptr;
    }
    if (options_.keep_drain_log) {
      merge_scratch_.insert(merge_scratch_.end(), shard->journal.begin(),
                            shard->journal.end());
      shard->journal.clear();
    }
  }
  if (options_.keep_drain_log) {
    // "Outboxes drain in server-id order": fold the per-shard journals into
    // one (server, seq)-sorted log per drain. Per-server seq order is
    // guaranteed by the FIFO inboxes; the sort makes the cross-server view
    // deterministic for the property tests.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const DrainRecord& a, const DrainRecord& b) {
                return a.server != b.server ? a.server < b.server
                                            : a.seq < b.seq;
              });
    drain_log_.insert(drain_log_.end(), merge_scratch_.begin(),
                      merge_scratch_.end());
  }
  if (error) {
    synced_ = true;
    std::rethrow_exception(error);
  }

  // Resolve closed ops in submission order: inline part + per-group maxes.
  for (; resolve_cursor_ < ops_.size(); ++resolve_cursor_) {
    OpRecord& op = ops_[resolve_cursor_];
    Nanos total = op.inline_latency;
    for (const OpRecord::Group& g : op.groups) {
      Nanos group_max = g.inline_max;
      for (std::size_t i = 0; i < g.count; ++i) {
        group_max = std::max(group_max, slots_[g.first + i]);
      }
      total += group_max;
    }
    op.resolved = total;
    if (op.on_resolved) op.on_resolved(total);
  }
  synced_ = true;
}

Nanos ShardExecutor::resolved_latency(std::int64_t token) const {
  const std::int64_t index = token - first_token_;
  if (index < 0 || index >= static_cast<std::int64_t>(ops_.size())) {
    throw std::out_of_range("ShardExecutor::resolved_latency: stale token");
  }
  const OpRecord& op = ops_[static_cast<std::size_t>(index)];
  if (static_cast<std::size_t>(index) >= resolve_cursor_) {
    throw std::logic_error(
        "ShardExecutor::resolved_latency: op not drained yet");
  }
  return op.resolved;
}

void ShardExecutor::set_bypassed(bool on) {
  assert((synced_ || !on) && "bypass flipped while work is in flight");
  bypassed_ = on;
}

std::uint64_t ShardExecutor::executed_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->executed;
  }
  return total;
}

void ShardExecutor::recycle_if_resolved() {
  // Safe only once a drain covered every outstanding closure: shard threads
  // may hold Nanos* into slots_ until then.
  if (!synced_ || ops_.empty() || resolve_cursor_ != ops_.size()) return;
  first_token_ += static_cast<std::int64_t>(ops_.size());
  ops_.clear();
  slots_.clear();
  resolve_cursor_ = 0;
}

}  // namespace chameleon::sim
