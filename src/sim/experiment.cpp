#include "sim/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <stdexcept>

#include "cluster/cluster.hpp"
#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/logging.hpp"
#include "fault/digest.hpp"
#include "kv/kv_store.hpp"
#include "sim/shard_executor.hpp"
#include "workload/registry.hpp"

namespace chameleon::sim {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kRepBaseline: return "REP-baseline";
    case Scheme::kEcBaseline: return "EC-baseline";
    case Scheme::kRepEcBaseline: return "REP+EC-baseline";
    case Scheme::kEdmRep: return "EDM(REP)";
    case Scheme::kEdmEc: return "EDM(EC)";
    case Scheme::kSwansEc: return "SWANS(EC)";
    case Scheme::kChameleonRep: return "Chameleon(REP)";
    case Scheme::kChameleonEc: return "Chameleon(EC)";
  }
  return "?";
}

meta::RedState initial_scheme_of(Scheme s) {
  switch (s) {
    case Scheme::kRepBaseline:
    case Scheme::kRepEcBaseline:
    case Scheme::kEdmRep:
    case Scheme::kChameleonRep:
      return meta::RedState::kRep;
    case Scheme::kEcBaseline:
    case Scheme::kEdmEc:
    case Scheme::kSwansEc:
    case Scheme::kChameleonEc:
      return meta::RedState::kEc;
  }
  return meta::RedState::kEc;
}

bool scheme_balances(Scheme s) {
  return s != Scheme::kRepBaseline && s != Scheme::kEcBaseline;
}

namespace {

/// Pre-pass: place every distinct object of the stream on a throwaway ring
/// identical to the cluster's and return the most-loaded server's bytes
/// under the initial scheme. Sizing devices off the *max* (not the mean)
/// absorbs consistent-hashing skew; `dataset_bytes` is the fallback when a
/// stream cannot be enumerated.
std::uint64_t max_server_bytes(workload::WorkloadStream& stream,
                               const ExperimentConfig& config,
                               const kv::KvConfig& kv_config,
                               std::uint64_t dataset_bytes) {
  cluster::HashRing ring(config.servers, config.ring_vnodes);
  std::vector<std::uint64_t> load(config.servers, 0);
  std::unordered_map<ObjectId, std::uint32_t> seen;

  const bool rep = kv_config.initial_scheme == meta::RedState::kRep;
  const std::size_t fragments = rep ? kv_config.replicas : kv_config.ec_total;

  // Fragments occupy whole flash pages; count page-rounded bytes, otherwise
  // small EC shards (e.g. 1KB of a 4KB object) under-estimate the footprint
  // by up to the page size.
  const flashsim::SsdConfig page_ref;
  const std::uint64_t page = page_ref.page_size_bytes;

  stream.reset();
  workload::TraceRecord rec;
  while (stream.next(rec)) {
    if (!seen.try_emplace(rec.oid, rec.size_bytes).second) continue;
    const std::uint64_t frag_bytes =
        rep ? rec.size_bytes
            : (rec.size_bytes + kv_config.ec_data - 1) / kv_config.ec_data;
    const std::uint64_t frag_pages_bytes =
        std::max<std::uint64_t>(1, (frag_bytes + page - 1) / page) * page;
    for (const ServerId s :
         ring.successors(kv::KvStore::placement_hash(rec.oid), fragments)) {
      load[s] += frag_pages_bytes;
    }
  }
  stream.reset();

  std::uint64_t max_load = 0;
  for (const auto b : load) max_load = std::max(max_load, b);
  if (max_load == 0) {
    // Empty stream: fall back to the nominal mean share.
    const double factor = rep ? static_cast<double>(kv_config.replicas)
                              : static_cast<double>(kv_config.ec_total) /
                                    static_cast<double>(kv_config.ec_data);
    max_load = static_cast<std::uint64_t>(
        static_cast<double>(dataset_bytes) * factor /
        static_cast<double>(config.servers));
  }
  return max_load;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const auto stream =
      workload::make_preset(config.workload, config.scale, config.seed);
  const auto preset_cfg =
      workload::preset_config(config.workload).scaled(config.scale);
  return run_experiment_on(config, *stream, preset_cfg.dataset_bytes);
}

ExperimentResult run_experiment_on(const ExperimentConfig& config,
                                   workload::WorkloadStream& stream,
                                   std::uint64_t dataset_bytes) {
  const auto wall_start = std::chrono::steady_clock::now();

  kv::KvConfig kv_config;
  kv_config.initial_scheme = initial_scheme_of(config.scheme);
  kv_config.multi_stream = config.multi_stream;

  // Size each SSD so the *most-loaded* server under the initial scheme sits
  // at the target utilization. All schemes sharing an initial policy get
  // identical devices, which is what makes Fig 4b/5b/6b/7b comparisons
  // apples-to-apples.
  const std::uint64_t per_server_bytes =
      max_server_bytes(stream, config, kv_config, dataset_bytes);
  flashsim::SsdConfig ssd = flashsim::SsdConfig::sized_for(
      per_server_bytes, config.target_utilization);

  cluster::Cluster cluster(config.servers, ssd, config.ring_vnodes);
  meta::MappingTable table;
  kv::KvStore store(cluster, table, kv_config);

  // Sharded parallel stepping (bit-identical to sequential; see
  // docs/PARALLELISM.md). The executor defers per-device flash work to
  // worker threads; all logical decisions stay on this thread.
  std::unique_ptr<ShardExecutor> exec;
  if (config.workers > 1) {
    ShardExecutor::Options opts;
    opts.workers = config.workers;
    exec = std::make_unique<ShardExecutor>(cluster, opts);
    cluster.attach_executor(exec.get());
  }

  // Balancing policy per Table IV.
  std::unique_ptr<core::Balancer> chameleon;
  std::unique_ptr<baselines::EdmBalancer> edm;
  std::unique_ptr<baselines::HybridRepEcPolicy> hybrid;
  std::unique_ptr<baselines::SwansBalancer> swans;
  switch (config.scheme) {
    case Scheme::kChameleonRep:
    case Scheme::kChameleonEc:
      chameleon = std::make_unique<core::Balancer>(store, config.chameleon);
      break;
    case Scheme::kEdmRep:
    case Scheme::kEdmEc:
      edm = std::make_unique<baselines::EdmBalancer>(store, config.edm);
      break;
    case Scheme::kRepEcBaseline:
      hybrid =
          std::make_unique<baselines::HybridRepEcPolicy>(store, config.hybrid);
      break;
    case Scheme::kSwansEc:
      swans = std::make_unique<baselines::SwansBalancer>(store, config.swans);
      break;
    default:
      break;
  }

  ExperimentResult result;
  result.workload = stream.name();
  result.scheme = config.scheme;
  result.servers = config.servers;

  VirtualClock clock;
  Epoch last_epoch = 0;
  // Client-visible put latency distribution (0 - 100ms, 20us bins).
  Histogram put_latency(0.0, 1e8, 5000);

  // Deferred put tokens, in submission order. Flushed at every drain fence:
  // tokens must be consumed before the next op begins after a drain (the
  // executor recycles resolved ops there), and feeding the histogram in
  // submission order keeps it byte-identical to sequential mode.
  std::vector<std::int64_t> pending_puts;
  const auto flush = [&] {
    if (!exec) return;
    exec->drain();
    for (const std::int64_t token : pending_puts) {
      put_latency.add(static_cast<double>(exec->resolved_latency(token)));
    }
    pending_puts.clear();
  };

  const std::uint32_t drain_batch = std::max<std::uint32_t>(1, config.drain_batch);
  stream.reset();
  workload::TraceRecord rec;
  while (stream.next(rec)) {
    clock.advance_to(rec.timestamp);
    const Epoch epoch = clock.epoch_of(config.epoch_length);
    while (last_epoch < epoch) {
      ++last_epoch;
      if (exec) {
        // Control-plane sections run inline between a drain fence and
        // resume — exactly the sequential interleaving.
        flush();
        exec->set_bypassed(true);
      }
      if (chameleon) chameleon->on_epoch(last_epoch);
      if (edm) edm->on_epoch(last_epoch);
      if (hybrid) hybrid->on_epoch(last_epoch);
      if (swans) swans->on_epoch(last_epoch);
      if (exec) exec->set_bypassed(false);
    }

    ++result.requests;
    if (rec.is_write) {
      const auto op = store.put(rec.oid, rec.size_bytes, epoch);
      if (op.pending >= 0) {
        pending_puts.push_back(op.pending);
      } else {
        put_latency.add(static_cast<double>(op.latency));
      }
      ++result.write_ops;
    } else {
      // Block traces read extents they never wrote in the captured window;
      // materialize such objects first (a warm-up load write).
      if (!table.exists(rec.oid)) {
        store.put(rec.oid, rec.size_bytes, epoch);
        ++result.load_writes;
      }
      store.get(rec.oid, epoch);
      ++result.read_ops;
    }
    if (exec && result.requests % drain_batch == 0) flush();
  }
  flush();
  if (exec) cluster.attach_executor(nullptr);

  // Collect the figure metrics.
  result.erase_counts = cluster.erase_counts();
  const auto stats = cluster.erase_stats();
  result.erase_mean = stats.mean();
  result.erase_stddev = stats.stddev();
  result.total_erases = cluster.total_erases();
  result.write_amplification = cluster.write_amplification();
  result.avg_device_write_latency = cluster.avg_write_latency();
  result.put_latency_p50 = static_cast<Nanos>(put_latency.percentile(50));
  result.put_latency_p99 = static_cast<Nanos>(put_latency.percentile(99));
  result.network_bytes_total = cluster.network().total_bytes();
  result.migration_bytes =
      cluster.network().bytes(cluster::Traffic::kMigration);
  result.conversion_bytes =
      cluster.network().bytes(cluster::Traffic::kConversion);
  result.swap_bytes = cluster.network().bytes(cluster::Traffic::kSwap);
  result.final_census = table.census();
  if (chameleon && config.collect_timeline) {
    result.chameleon_timeline = chameleon->timeline();
  }
  // Equivalence oracle: computed in both modes so any run pair can be
  // cross-checked (tests, the workers=1-vs-N CI smoke, cached bench rows).
  result.state_digest = fault::cluster_digest(store);

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  LOG_DEBUG << "experiment " << result.workload << "/"
            << scheme_name(result.scheme) << " done in " << result.wall_seconds
            << "s, " << result.requests << " reqs";
  return result;
}

}  // namespace chameleon::sim
