// Run independent experiment configurations across a thread pool. Each
// experiment owns its entire world (cluster, table, workload generator), so
// runs are embarrassingly parallel and remain bit-identical to sequential
// execution.
#pragma once

#include <vector>

#include "sim/experiment.hpp"

namespace chameleon::sim {

/// Run every configuration, using up to `workers` threads (0 = hardware
/// concurrency). Results are returned in input order.
std::vector<ExperimentResult> run_experiments_parallel(
    const std::vector<ExperimentConfig>& configs, std::size_t workers = 0);

}  // namespace chameleon::sim
