#include "sim/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace chameleon::sim {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
  for (const auto w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }

std::string summary_line(const ExperimentResult& r) {
  std::ostringstream os;
  os << r.workload << " / " << scheme_name(r.scheme) << ": erases mean="
     << TextTable::num(r.erase_mean, 1) << " stddev="
     << TextTable::num(r.erase_stddev, 1) << " total=" << r.total_erases
     << " WA=" << TextTable::num(r.write_amplification, 3)
     << " wlat_us="
     << TextTable::num(static_cast<double>(r.avg_device_write_latency) / 1e3,
                       1);
  return os.str();
}

void write_erase_distribution_csv(const ExperimentResult& r,
                                  const std::string& path) {
  std::ofstream out(path);
  if (!out) return;
  auto sorted = r.erase_counts;
  std::sort(sorted.begin(), sorted.end());
  out << "rank,erases\n";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out << i << ',' << sorted[i] << '\n';
  }
}

void append_result_csv(const ExperimentResult& r, const std::string& path) {
  const bool fresh = !std::ifstream(path).good();
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  if (fresh) {
    out << "workload,scheme,servers,erase_mean,erase_stddev,total_erases,"
           "write_amplification,avg_write_latency_ns,requests,write_ops,"
           "read_ops,network_bytes,migration_bytes,conversion_bytes,"
           "swap_bytes,wall_seconds\n";
  }
  out << r.workload << ',' << scheme_name(r.scheme) << ',' << r.servers << ','
      << r.erase_mean << ',' << r.erase_stddev << ',' << r.total_erases << ','
      << r.write_amplification << ',' << r.avg_device_write_latency << ','
      << r.requests << ',' << r.write_ops << ',' << r.read_ops << ','
      << r.network_bytes_total << ',' << r.migration_bytes << ','
      << r.conversion_bytes << ',' << r.swap_bytes << ',' << r.wall_seconds
      << '\n';
}

}  // namespace chameleon::sim
