#include "sim/parallel_runner.hpp"

#include <thread>

#include "common/thread_pool.hpp"

namespace chameleon::sim {

std::vector<ExperimentResult> run_experiments_parallel(
    const std::vector<ExperimentConfig>& configs, std::size_t workers) {
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  std::vector<ExperimentResult> results(configs.size());
  ThreadPool pool(std::min(workers, configs.size() == 0 ? 1 : configs.size()));
  pool.parallel_for(0, configs.size(), [&](std::size_t i) {
    results[i] = run_experiment(configs[i]);
  });
  return results;
}

}  // namespace chameleon::sim
