// The Chameleon client library (paper §III-A / §IV-A): the application-
// facing API for reading and writing data to the flash cluster, with the
// choice of REP or EC as the initial redundancy policy. Keys are strings,
// hashed to ObjectIds with FNV-1a, placed by the cluster's consistent ring.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/fnv.hpp"
#include "common/journal.hpp"
#include "common/rng.hpp"
#include "kv/kv_store.hpp"

namespace chameleon::kv {

/// Client-side degradation knobs: bounded exponential backoff with
/// deterministic jitter, a per-attempt latency budget, and hedged degraded
/// reads (a read that overruns the budget is re-issued with the caller's
/// suspect servers excluded, falling back to EC reconstruction).
struct RetryPolicy {
  std::size_t max_attempts = 4;      ///< total tries per op (>= 1)
  Nanos base_backoff = kMillisecond; ///< wait before the 2nd attempt
  double backoff_multiplier = 2.0;   ///< growth per subsequent attempt
  double jitter = 0.2;               ///< +/- fraction applied to each wait
  Nanos op_timeout = 0;              ///< per-attempt budget; 0 = unlimited
  /// Whole-operation budget across every attempt and backoff wait; once it
  /// lapses no further attempt starts (the in-flight attempt still finishes).
  /// 0 = unlimited. Enforced by retry loops that serve live traffic (the
  /// svc ClientPool); it bounds how long failover/replay may stall a caller.
  Nanos total_deadline = 0;
  bool hedge_degraded_reads = true;  ///< allow the timeout-hedge fallback
  std::uint64_t seed = 0x5eed;       ///< jitter RNG seed (determinism)
};

/// Outcome of a retried operation, including how hard the client worked.
struct RetryResult {
  OpResult op;
  std::vector<std::uint8_t> value;  ///< gets only
  std::size_t attempts = 1;
  Nanos backoff_latency = 0;  ///< total time spent waiting between attempts
  bool degraded = false;      ///< served by a degraded read
  bool hedged = false;        ///< the timeout-hedge path fired
};

/// The retry budget ran out: every attempt failed transiently. Deliberately
/// NOT a TransientFault — from the caller's view the operation is dead.
struct RetriesExhausted : std::runtime_error {
  RetriesExhausted(const char* op, std::size_t attempts,
                   const std::string& last_error)
      : std::runtime_error(std::string(op) + " failed after " +
                           std::to_string(attempts) +
                           " attempts; last error: " + last_error) {}
};

class Client {
 public:
  /// `store` must outlive the client. Payloads are enabled on the store the
  /// first time a payload-carrying call is made.
  explicit Client(KvStore& store) : store_(store) {}

  static ObjectId object_id(std::string_view key) { return fnv1a64(key); }

  /// Store a value under `key`. Returns the operation latency.
  OpResult put(std::string_view key, std::span<const std::uint8_t> value,
               Epoch now = 0);
  OpResult put(std::string_view key, std::string_view value, Epoch now = 0);

  /// Fetch the value of `key`; `down` lists unavailable servers for
  /// degraded reads. Throws std::out_of_range for unknown keys.
  std::vector<std::uint8_t> get(std::string_view key, Epoch now = 0,
                                const std::set<ServerId>& down = {});
  std::string get_string(std::string_view key, Epoch now = 0,
                         const std::set<ServerId>& down = {});

  bool remove(std::string_view key);
  bool contains(std::string_view key) const;

  /// Current redundancy state of a key (for observability/examples).
  std::optional<meta::RedState> state_of(std::string_view key) const;

  /// Install the degradation policy used by the *_with_retry calls.
  /// Resets the jitter RNG, so a fixed policy + op sequence is reproducible.
  void set_retry_policy(const RetryPolicy& policy) {
    retry_policy_ = policy;
    retry_rng_ = Xoshiro256(policy.seed);
  }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Put with bounded retries. Transient faults (network drop, device write
  /// failure) back off exponentially and retry; a put is idempotent here
  /// (fragments overwrite under the same keys), so retrying a partially
  /// applied attempt converges. Throws RetriesExhausted past the budget.
  RetryResult put_with_retry(std::string_view key,
                             std::span<const std::uint8_t> value,
                             Epoch now = 0);
  RetryResult put_with_retry(std::string_view key, std::string_view value,
                             Epoch now = 0);

  /// Get with bounded retries and graceful degradation. A ReadFault marks
  /// the failing server down and immediately re-reads degraded (replica
  /// fallback / k-of-n reconstruction); other transient faults back off and
  /// retry; an attempt that overruns op_timeout is hedged with a degraded
  /// read that skips `suspects`. Throws RetriesExhausted past the budget.
  RetryResult get_with_retry(std::string_view key, Epoch now = 0,
                             const std::set<ServerId>& suspects = {});

  KvStore& store() { return store_; }

  /// Attach (or detach with nullptr) a durability journal. Successful puts
  /// and removes through this client are reported after they apply, before
  /// the call returns (write-ahead-of-acknowledgement).
  void set_journal(MutationJournal* journal) { journal_ = journal; }
  MutationJournal* journal() const { return journal_; }

 private:
  KvStore& store_;
  RetryPolicy retry_policy_;
  Xoshiro256 retry_rng_{retry_policy_.seed};
  MutationJournal* journal_ = nullptr;  ///< not owned

  /// Jittered exponential backoff before attempt `attempt` (2-based).
  Nanos backoff_for(std::size_t attempt);
};

}  // namespace chameleon::kv
