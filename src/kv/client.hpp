// The Chameleon client library (paper §III-A / §IV-A): the application-
// facing API for reading and writing data to the flash cluster, with the
// choice of REP or EC as the initial redundancy policy. Keys are strings,
// hashed to ObjectIds with FNV-1a, placed by the cluster's consistent ring.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/fnv.hpp"
#include "kv/kv_store.hpp"

namespace chameleon::kv {

class Client {
 public:
  /// `store` must outlive the client. Payloads are enabled on the store the
  /// first time a payload-carrying call is made.
  explicit Client(KvStore& store) : store_(store) {}

  static ObjectId object_id(std::string_view key) { return fnv1a64(key); }

  /// Store a value under `key`. Returns the operation latency.
  OpResult put(std::string_view key, std::span<const std::uint8_t> value,
               Epoch now = 0);
  OpResult put(std::string_view key, std::string_view value, Epoch now = 0);

  /// Fetch the value of `key`; `down` lists unavailable servers for
  /// degraded reads. Throws std::out_of_range for unknown keys.
  std::vector<std::uint8_t> get(std::string_view key, Epoch now = 0,
                                const std::set<ServerId>& down = {});
  std::string get_string(std::string_view key, Epoch now = 0,
                         const std::set<ServerId>& down = {});

  bool remove(std::string_view key);
  bool contains(std::string_view key) const;

  /// Current redundancy state of a key (for observability/examples).
  std::optional<meta::RedState> state_of(std::string_view key) const;

  KvStore& store() { return store_; }

 private:
  KvStore& store_;
};

}  // namespace chameleon::kv
