#include "kv/client.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace chameleon::kv {

namespace {

void count_retry(const char* op) {
  if (!obs::enabled()) return;
  auto& counter = obs::metrics().counter(
      "chameleon_retries_total", {{"op", op}},
      "Client retry attempts past the first, by operation");
  counter.inc();
}

}  // namespace

OpResult Client::put(std::string_view key, std::span<const std::uint8_t> value,
                     Epoch now) {
  store_.enable_payloads();
  const ObjectId oid = object_id(key);
  const OpResult result = store_.put_value(oid, value, now);
  // Redo-log: the mutation applied; make it durable before acknowledging.
  // The WAL append+fsync reports into the serving span's wal_fsync stage
  // via the thread-local bucket (the svc worker carves it out of store
  // exec); a no-op when observability is off or no journal is attached.
  if (journal_ != nullptr) {
    obs::SpanStageScope wal_scope(obs::SvcStage::kWalFsync);
    journal_->on_put_value(oid, value, now);
  }
  return result;
}

OpResult Client::put(std::string_view key, std::string_view value, Epoch now) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(value.data());
  return put(key, std::span<const std::uint8_t>(data, value.size()), now);
}

std::vector<std::uint8_t> Client::get(std::string_view key, Epoch now,
                                      const std::set<ServerId>& down) {
  return store_.get_value(object_id(key), now, down);
}

std::string Client::get_string(std::string_view key, Epoch now,
                               const std::set<ServerId>& down) {
  const auto bytes = get(key, now, down);
  return std::string(bytes.begin(), bytes.end());
}

bool Client::remove(std::string_view key) {
  const ObjectId oid = object_id(key);
  const bool removed = store_.remove(oid);
  if (removed && journal_ != nullptr) {
    obs::SpanStageScope wal_scope(obs::SvcStage::kWalFsync);
    journal_->on_remove(oid);
  }
  return removed;
}

bool Client::contains(std::string_view key) const {
  return store_.table().exists(object_id(key));
}

std::optional<meta::RedState> Client::state_of(std::string_view key) const {
  const auto m = store_.table().get(object_id(key));
  if (!m) return std::nullopt;
  return m->state;
}

Nanos Client::backoff_for(std::size_t attempt) {
  // attempt is 2-based: the first retry waits base_backoff.
  const double exponent = static_cast<double>(attempt - 2);
  const double nominal = static_cast<double>(retry_policy_.base_backoff) *
                         std::pow(retry_policy_.backoff_multiplier, exponent);
  // Deterministic jitter in [1 - j, 1 + j): decorrelates retry storms in a
  // real deployment; here it exercises that the harness stays reproducible.
  const double factor =
      1.0 + retry_policy_.jitter * (2.0 * retry_rng_.next_double() - 1.0);
  return static_cast<Nanos>(nominal * factor);
}

RetryResult Client::put_with_retry(std::string_view key,
                                   std::span<const std::uint8_t> value,
                                   Epoch now) {
  RetryResult result;
  std::string last_error;
  const std::size_t budget = std::max<std::size_t>(1, retry_policy_.max_attempts);
  for (std::size_t attempt = 1; attempt <= budget; ++attempt) {
    result.attempts = attempt;
    if (attempt > 1) {
      count_retry("put");
      result.backoff_latency += backoff_for(attempt);
    }
    try {
      result.op = put(key, value, now);
      return result;
    } catch (const TransientFault& e) {
      last_error = e.what();
    }
  }
  throw RetriesExhausted("put", budget, last_error);
}

RetryResult Client::put_with_retry(std::string_view key, std::string_view value,
                                   Epoch now) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(value.data());
  return put_with_retry(key, std::span<const std::uint8_t>(data, value.size()),
                        now);
}

RetryResult Client::get_with_retry(std::string_view key, Epoch now,
                                   const std::set<ServerId>& suspects) {
  const ObjectId oid = object_id(key);
  RetryResult result;
  std::string last_error;
  std::set<ServerId> down;  // servers observed failing during THIS op
  const std::size_t budget = std::max<std::size_t>(1, retry_policy_.max_attempts);
  for (std::size_t attempt = 1; attempt <= budget; ++attempt) {
    result.attempts = attempt;
    if (attempt > 1) count_retry("get");
    try {
      result.value = store_.get_value(oid, now, down, &result.op);
      result.degraded = !down.empty();
      // Hedge: the fast path came back over budget (e.g. a stalled node in
      // the read set). Re-issue once as a degraded read that routes around
      // the caller's suspects; the hedge replaces the slow result.
      if (retry_policy_.op_timeout > 0 &&
          result.op.latency > retry_policy_.op_timeout &&
          retry_policy_.hedge_degraded_reads && down.empty() &&
          !suspects.empty()) {
        result.hedged = true;
        result.degraded = true;
        result.value = store_.get_value(oid, now, suspects, &result.op);
      }
      return result;
    } catch (const ReadFault& e) {
      // We know exactly which server failed: go degraded immediately, no
      // backoff — surviving redundancy is already there to be read.
      last_error = e.what();
      down.insert(e.server);
      down.insert(suspects.begin(), suspects.end());
    } catch (const TransientFault& e) {
      // Anonymous transient failure (e.g. the response was dropped on the
      // network): back off and retry the same path.
      last_error = e.what();
      result.backoff_latency += backoff_for(attempt + 1);
    }
  }
  throw RetriesExhausted("get", budget, last_error);
}

}  // namespace chameleon::kv
