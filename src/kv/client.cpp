#include "kv/client.hpp"

namespace chameleon::kv {

OpResult Client::put(std::string_view key, std::span<const std::uint8_t> value,
                     Epoch now) {
  store_.enable_payloads();
  return store_.put_value(object_id(key), value, now);
}

OpResult Client::put(std::string_view key, std::string_view value, Epoch now) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(value.data());
  return put(key, std::span<const std::uint8_t>(data, value.size()), now);
}

std::vector<std::uint8_t> Client::get(std::string_view key, Epoch now,
                                      const std::set<ServerId>& down) {
  return store_.get_value(object_id(key), now, down);
}

std::string Client::get_string(std::string_view key, Epoch now,
                               const std::set<ServerId>& down) {
  const auto bytes = get(key, now, down);
  return std::string(bytes.begin(), bytes.end());
}

bool Client::remove(std::string_view key) {
  return store_.remove(object_id(key));
}

bool Client::contains(std::string_view key) const {
  return store_.table().exists(object_id(key));
}

std::optional<meta::RedState> Client::state_of(std::string_view key) const {
  const auto m = store_.table().get(object_id(key));
  if (!m) return std::nullopt;
  return m->state;
}

}  // namespace chameleon::kv
