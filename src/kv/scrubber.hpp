// Background integrity scrubbing: walk the mapping table and verify that
// every object's fragments actually exist on their servers, and — when the
// payload plane is enabled — that replica copies agree and Reed-Solomon
// parity is consistent. Optionally repairs what it finds: missing or
// corrupt fragments are rebuilt from the surviving redundancy. Production
// flash stores scrub continuously; silent loss compounds with wear.
#pragma once

#include <cstdint>

#include "kv/kv_store.hpp"

namespace chameleon::kv {

struct ScrubReport {
  std::size_t objects_checked = 0;
  std::size_t missing_fragments = 0;  ///< in the table, absent on the device
  std::size_t corrupt_replicas = 0;   ///< replica bytes disagree (payload)
  std::size_t parity_mismatches = 0;  ///< RS parity inconsistent (payload)
  std::size_t repaired = 0;           ///< fragments rebuilt (repair mode)
  std::size_t unrecoverable = 0;      ///< too little redundancy left
};

class Scrubber {
 public:
  explicit Scrubber(KvStore& store) : store_(store) {}

  /// Scan every object. With `repair` set, rebuild missing/corrupt
  /// fragments in place (same placement, same version).
  ScrubReport scrub(Epoch now, bool repair = false);

 private:
  /// Verify/repair one object; updates the report.
  void scrub_object(const meta::ObjectMeta& m, Epoch now, bool repair,
                    ScrubReport& report);

  KvStore& store_;
};

}  // namespace chameleon::kv
