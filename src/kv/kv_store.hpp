// Distributed flash-backed KV store: the test application the paper builds
// from scratch (§IV-A). Places objects with consistent hashing, writes them
// under REP (3-way) or EC (RS(6,4)), and — crucially for Chameleon —
// performs the *lazy* state transitions at write time: an object sitting in
// late-REP / late-EC / REP-EWO / EC-EWO is converted and re-placed by the
// very write that updates it, exploiting flash's out-of-place update so the
// transition itself adds no extra flash writes beyond the update.
//
// The simulation fast path is metadata-sized (no payload bytes). Attaching
// a PayloadStore (enable_payloads()) additionally carries real bytes through
// the same placement and Reed-Solomon paths; kv/client.hpp builds the
// string-keyed application API on top.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/faults.hpp"
#include "common/fnv.hpp"
#include "common/types.hpp"
#include "ec/reed_solomon.hpp"
#include "ec/striper.hpp"
#include "kv/payload_store.hpp"
#include "meta/mapping_table.hpp"

namespace chameleon {
class ThreadPool;
}

namespace chameleon::kv {

struct KvConfig {
  std::size_t replicas = 3;   ///< r-way replication (paper: 3)
  std::size_t ec_total = 6;   ///< RS n (paper: 6)
  std::size_t ec_data = 4;    ///< RS k (paper: 4)
  meta::RedState initial_scheme = meta::RedState::kRep;  ///< for new objects
  /// A pending transition whose destination has filled beyond this logical
  /// utilization is cancelled at write time (the update stays in place)
  /// rather than overflowing the destination device.
  double dst_space_guard = 0.92;

  /// CPU cost of Reed-Solomon reconstruction during degraded reads, in
  /// nanoseconds per payload byte (~2 GB/s decode, ISA-L-class).
  double decode_ns_per_byte = 0.5;

  /// Multi-stream SSD writes: tag each object's page writes hot or cold by
  /// its Eq-1 heat, so the device keeps differently-tempered data in
  /// separate blocks (lower victim utilization -> lower WA). Off by
  /// default: the paper's devices are single-stream.
  bool multi_stream = false;
  double hot_stream_threshold = 4.0;

  ec::ReplicaGeometry replica_geometry(std::uint32_t page_size) const {
    return ec::ReplicaGeometry{replicas, page_size};
  }
  ec::StripeGeometry stripe_geometry(std::uint32_t page_size) const {
    return ec::StripeGeometry{ec_total, ec_data, page_size};
  }
};

/// Outcome of a client-visible operation.
struct OpResult {
  Nanos latency = 0;        ///< max over parallel fan-out + network
  bool converted = false;   ///< a lazy transition completed with this op
  meta::RedState state = meta::RedState::kRep;  ///< state after the op
  /// Deferred-execution token: -1 when `latency` is final (sequential mode).
  /// >= 0 when a device executor is engaged — `latency` then holds only the
  /// inline (network/decode) part; the full value is available from
  /// ShardExecutor::resolved_latency(pending) after the next drain.
  std::int64_t pending = -1;
};

/// A fragment read failed on `server` — the fragment is missing (wiped by an
/// interrupted repair) or the device returned an uncorrectable error. The
/// client should add the server to its `down` set and read degraded.
struct ReadFault : TransientFault {
  ReadFault(ServerId at, const std::string& why)
      : TransientFault("kv read fault on server " + std::to_string(at) + ": " +
                       why),
        server(at) {}
  ServerId server;
};

/// A fragment write failed transiently on `server`. No KV metadata was
/// changed; retrying the put rewrites every fragment under the same keys.
struct WriteFault : TransientFault {
  explicit WriteFault(ServerId at)
      : TransientFault("kv write fault on server " + std::to_string(at)),
        server(at) {}
  ServerId server;
};

class KvStore {
 public:
  KvStore(cluster::Cluster& cluster, meta::MappingTable& table,
          const KvConfig& config);

  /// Write (create or update) an object of `bytes`, performing any pending
  /// lazy transition. `now` is the current balancing epoch (for heat).
  OpResult put(ObjectId oid, std::uint64_t bytes, Epoch now);

  /// Payload-carrying put: same flow, but fragment bytes are materialized
  /// in the attached PayloadStore. Requires enable_payloads().
  OpResult put_value(ObjectId oid, std::span<const std::uint8_t> value,
                     Epoch now);

  /// Read an object. Intermediate states read from the source servers,
  /// which hold the latest bytes (paper §III-C read-correctness rule).
  OpResult get(ObjectId oid, Epoch now);

  /// Degraded read with `down` servers unavailable: replicated objects fall
  /// back to a surviving replica; encoded objects read any k live shards
  /// and pay the reconstruction cost when parity is involved. Throws
  /// std::runtime_error when too few fragments survive.
  OpResult get_degraded(ObjectId oid, Epoch now,
                        const std::set<ServerId>& down);

  /// Payload-carrying get. `down` lists unavailable servers: replicated
  /// objects fall back to another replica, encoded objects reconstruct from
  /// any k surviving shards (degraded read). Throws if unrecoverable.
  /// A non-empty `down` routes device accounting through get_degraded; the
  /// accounted OpResult is copied to `op_out` when non-null.
  std::vector<std::uint8_t> get_value(
      ObjectId oid, Epoch now, const std::set<ServerId>& down = {},
      OpResult* op_out = nullptr);

  /// Delete an object everywhere.
  bool remove(ObjectId oid);

  /// Eagerly move an object's fragments to `dst` keeping its scheme; bulk
  /// copy through the network (this is what EDM does, and what Chameleon
  /// falls back to for long-cold data). `traffic` attributes the bytes.
  Nanos relocate(ObjectId oid, const meta::ServerSet& dst,
                 cluster::Traffic traffic, Epoch now = 0);

  /// Eagerly convert an object to `target` scheme on `dst` (HDFS-RAID-style
  /// re-encode; used by the REP+EC baseline and the eager-conversion
  /// ablation). Reads current fragments, rewrites under the new scheme.
  Nanos convert(ObjectId oid, meta::RedState target,
                const meta::ServerSet& dst, cluster::Traffic traffic,
                Epoch now = 0);

  /// Default placement for a fresh object under `scheme`.
  meta::ServerSet place(ObjectId oid, meta::RedState scheme) const;

  /// Ring position of an object (FNV-1a + finalizer; see common/fnv.hpp).
  static std::uint64_t placement_hash(ObjectId oid) {
    return mix64(fnv1a64(oid));
  }

  void enable_payloads();
  bool payloads_enabled() const { return payloads_ != nullptr; }

  /// Optional thread pool for Reed-Solomon shard arithmetic on the payload
  /// path: encode/reconstruct chunk their byte ranges with parallel_for.
  /// Purely a throughput knob — the output bytes are identical either way.
  void set_codec_pool(ThreadPool* pool) { codec_pool_ = pool; }
  ThreadPool* codec_pool() const { return codec_pool_; }
  const PayloadStore* payload_store() const { return payloads_.get(); }
  PayloadStore* payload_store_mutable() { return payloads_.get(); }

  const KvConfig& config() const { return config_; }
  cluster::Cluster& cluster() { return cluster_; }
  meta::MappingTable& table() { return table_; }
  const ec::ReedSolomon& codec() const { return codec_; }

  std::size_t fragments_of(meta::RedState scheme) const {
    return scheme == meta::RedState::kRep ? config_.replicas : config_.ec_total;
  }

  /// Bytes stored on ONE server for an object under `scheme`.
  std::uint64_t fragment_bytes(std::uint64_t object_bytes,
                               meta::RedState scheme) const;

 private:
  using FragmentPayloads = std::vector<std::vector<std::uint8_t>>;

  OpResult put_impl(ObjectId oid, std::uint64_t bytes, Epoch now,
                    const std::vector<std::uint8_t>* value);

  /// Per-fragment payloads for `scheme` (replica copies or RS shards).
  FragmentPayloads shard_payload(const std::vector<std::uint8_t>& value,
                                 meta::RedState scheme) const;

  /// Write all fragments of an object to `servers` under `scheme` with
  /// placement `version`; returns max device latency (parallel fan-out).
  Nanos write_fragments(ObjectId oid, std::uint64_t bytes,
                        meta::RedState scheme, const meta::ServerSet& servers,
                        std::uint32_t version,
                        const FragmentPayloads* payloads = nullptr,
                        flashsim::StreamHint hint =
                            flashsim::StreamHint::kDefault);
  /// Stream hint for an object with write heat `heat` (kDefault when
  /// multi-stream is disabled).
  flashsim::StreamHint stream_hint(double heat) const;
  void remove_fragments(ObjectId oid, meta::RedState scheme,
                        const meta::ServerSet& servers, std::uint32_t version);
  Nanos read_fragments_for_object(const meta::ObjectMeta& m);
  /// Read one fragment; throws ReadFault(server) when the fragment is
  /// missing or the device read fails transiently.
  Nanos read_one_fragment(ServerId server, std::uint64_t key);
  Nanos network_fanout(std::uint64_t bytes, meta::RedState scheme,
                       cluster::Traffic traffic);

  /// Gather the latest payload of an object from its source servers.
  std::vector<std::uint8_t> gather_value(const meta::ObjectMeta& m,
                                         const std::set<ServerId>& down) const;

  cluster::Cluster& cluster_;
  meta::MappingTable& table_;
  KvConfig config_;
  ec::ReedSolomon codec_;
  std::unique_ptr<PayloadStore> payloads_;
  ThreadPool* codec_pool_ = nullptr;  ///< not owned; nullptr = serial codec
};

}  // namespace chameleon::kv
