// Optional data plane: real fragment bytes keyed by (server, fragment).
// The wear simulation itself is metadata-sized; attaching a PayloadStore
// to the KvStore additionally carries payloads through the same placement
// and codec paths, so examples and tests can verify end-to-end content
// correctness (including degraded reads through Reed-Solomon reconstruct).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/flash_server.hpp"
#include "common/types.hpp"

namespace chameleon::kv {

class PayloadStore {
 public:
  void store(ServerId server, cluster::FragmentKey key,
             std::vector<std::uint8_t> bytes) {
    data_[slot(server, key)] = std::move(bytes);
  }

  std::optional<std::vector<std::uint8_t>> load(
      ServerId server, cluster::FragmentKey key) const {
    const auto it = data_.find(slot(server, key));
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  void erase(ServerId server, cluster::FragmentKey key) {
    data_.erase(slot(server, key));
  }

  std::size_t fragment_count() const { return data_.size(); }

 private:
  static std::uint64_t slot(ServerId server, cluster::FragmentKey key) {
    return key ^ (static_cast<std::uint64_t>(server) * 0x9E3779B97F4A7C15ULL);
  }

  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> data_;
};

}  // namespace chameleon::kv
