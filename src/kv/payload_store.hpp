// Optional data plane: real fragment bytes keyed by (server, fragment).
// The wear simulation itself is metadata-sized; attaching a PayloadStore
// to the KvStore additionally carries payloads through the same placement
// and codec paths, so examples and tests can verify end-to-end content
// correctness (including degraded reads through Reed-Solomon reconstruct).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/flash_server.hpp"
#include "common/types.hpp"

namespace chameleon::kv {

class PayloadStore {
 public:
  void store(ServerId server, cluster::FragmentKey key,
             std::vector<std::uint8_t> bytes) {
    data_[server][key] = std::move(bytes);
  }

  std::optional<std::vector<std::uint8_t>> load(
      ServerId server, cluster::FragmentKey key) const {
    const auto server_it = data_.find(server);
    if (server_it == data_.end()) return std::nullopt;
    const auto it = server_it->second.find(key);
    if (it == server_it->second.end()) return std::nullopt;
    return it->second;
  }

  void erase(ServerId server, cluster::FragmentKey key) {
    const auto server_it = data_.find(server);
    if (server_it == data_.end()) return;
    server_it->second.erase(key);
    if (server_it->second.empty()) data_.erase(server_it);
  }

  /// Drop every payload held by one server. Mirrors FlashServer::wipe_data:
  /// repair must call both, or stale bytes would mask real data loss.
  std::size_t erase_server(ServerId server) {
    const auto server_it = data_.find(server);
    if (server_it == data_.end()) return 0;
    const std::size_t n = server_it->second.size();
    data_.erase(server_it);
    return n;
  }

  std::size_t fragment_count() const {
    std::size_t n = 0;
    for (const auto& [server, fragments] : data_) n += fragments.size();
    return n;
  }

  /// Visit every stored fragment (hash-map order; checkpointing sorts).
  void for_each(const std::function<void(ServerId, cluster::FragmentKey,
                                         const std::vector<std::uint8_t>&)>&
                    fn) const {
    for (const auto& [server, fragments] : data_) {
      for (const auto& [key, bytes] : fragments) fn(server, key, bytes);
    }
  }

 private:
  std::unordered_map<ServerId,
                     std::unordered_map<cluster::FragmentKey,
                                        std::vector<std::uint8_t>>>
      data_;
};

}  // namespace chameleon::kv
