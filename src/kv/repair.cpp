#include "kv/repair.hpp"

#include <vector>

#include "common/fnv.hpp"
#include "obs/metrics.hpp"

namespace chameleon::kv {

using meta::ObjectMeta;
using meta::RedState;
using meta::ServerSet;

ServerId RepairManager::pick_replacement(const ObjectMeta& m,
                                         ServerId failed) {
  auto& cluster = store_.cluster();
  // Walk the ring from the object's hash; take the first server that is
  // neither failed nor already holding a fragment (src or pending dst).
  // The ring may have fewer servers than the cluster if the supervisor
  // already removed the dead ones.
  const auto candidates = cluster.ring().successors(
      KvStore::placement_hash(m.oid), cluster.ring().server_count());
  for (const ServerId s : candidates) {
    if (s == failed || failed_.contains(s)) continue;
    if (m.src.contains(s) || m.dst.contains(s)) continue;
    return s;
  }
  throw std::runtime_error("RepairManager: no replacement server available");
}

RepairReport RepairManager::repair_server(ServerId failed, Epoch now) {
  return run_repair(failed, now, /*wipe=*/true);
}

std::size_t RepairManager::resume_pending(Epoch now) {
  // Copy: run_repair mutates pending_ (erase on completion, keep on another
  // interruption).
  const std::vector<ServerId> pending(pending_.begin(), pending_.end());
  for (const ServerId s : pending) {
    // No wipe: the server was wiped when its failure was first repaired, and
    // it may have rejoined (and taken fresh writes) since then.
    (void)run_repair(s, now, /*wipe=*/false);
    if (obs::enabled()) {
      static auto& resumed = obs::metrics().counter(
          "chameleon_repair_resumed_total", {},
          "Interrupted repair passes re-run to completion");
      resumed.inc();
    }
  }
  return pending.size();
}

RepairReport RepairManager::run_repair(ServerId failed, Epoch now, bool wipe) {
  RepairReport report;
  if (wipe) {
    failed_.insert(failed);
    // The failed device's contents are gone; model the replacement drive as
    // empty, on both the metadata and the payload plane (stale payload bytes
    // would mask real data loss).
    store_.cluster().server(failed).wipe_data();
    if (store_.payloads_enabled()) {
      store_.payload_store_mutable()->erase_server(failed);
    }
  }
  // Until the pass finishes, the server counts as pending: an interruption
  // below leaves it there for resume_pending().
  pending_.insert(failed);

  // Collect affected objects first (acting inside for_each would re-enter
  // the mapping table's shard locks).
  std::vector<ObjectId> affected;
  store_.table().for_each([&](const ObjectMeta& m) {
    if (m.src.contains(failed) || m.dst.contains(failed)) {
      affected.push_back(m.oid);
    }
  });

  auto& cluster = store_.cluster();
  for (const ObjectId oid : affected) {
    if (interrupt_check_ && interrupt_check_(report.objects_scanned)) {
      // Coordinator crash mid-pass: abandon the scan. Everything repaired so
      // far is durable (meta mutations are per-object); the rest waits for
      // resume_pending().
      report.completed = false;
      return report;
    }
    const auto live = store_.table().get(oid);
    if (!live) continue;
    ++report.objects_scanned;
    ObjectMeta m = *live;
    const RedState scheme = meta::current_scheme(m.state);
    bool meta_changed = false;
    try {
      // 1. Rebuild lost data fragments (entries of src on the failed
      // server).
      for (std::uint32_t i = 0; i < m.src.size(); ++i) {
        if (m.src[i] != failed) continue;
        const ServerId replacement = pick_replacement(m, failed);
        const auto key = cluster::fragment_key(oid, m.placement_version, i);
        const std::uint64_t frag_bytes =
            store_.fragment_bytes(m.size_bytes, scheme);

        // Survivors must actually hold their fragments: a write that died
        // mid-fan-out can leave an object partially materialized.
        Nanos latency = 0;
        bool recoverable = true;
        if (scheme == RedState::kRep) {
          // Copy from any surviving replica.
          bool found = false;
          for (std::uint32_t j = 0; j < m.src.size(); ++j) {
            if (j == i || m.src[j] == failed) continue;
            const auto jkey =
                cluster::fragment_key(oid, m.placement_version, j);
            if (!cluster.server(m.src[j]).has_fragment(jkey)) continue;
            latency += cluster.server(m.src[j]).read_fragment(jkey);
            found = true;
            break;
          }
          recoverable = found;
        } else {
          // Reconstruct from k surviving shards.
          std::size_t read = 0;
          for (std::uint32_t j = 0;
               j < m.src.size() && read < store_.config().ec_data; ++j) {
            if (j == i || m.src[j] == failed) continue;
            const auto jkey =
                cluster::fragment_key(oid, m.placement_version, j);
            if (!cluster.server(m.src[j]).has_fragment(jkey)) continue;
            latency += cluster.server(m.src[j]).read_fragment(jkey);
            ++read;
          }
          recoverable = read >= store_.config().ec_data;
        }
        if (!recoverable) {
          // Torn object (e.g. a create that died mid-fan-out): the bytes are
          // gone, but still redirect the placement off the dead server so
          // the next write rematerializes it somewhere alive. Counted, not
          // thrown — one torn object must not abort the whole repair.
          m.src[i] = replacement;
          meta_changed = true;
          ++report.unrecoverable;
          continue;
        }
        latency += cluster.network().transfer(cluster::Traffic::kConversion,
                                              frag_bytes);
        latency += cluster.server(replacement).write_fragment(key, frag_bytes);

        // Payload plane: reconstruct the real bytes when they exist.
        if (store_.payloads_enabled()) {
          try {
            const auto value = store_.get_value(oid, now, {failed});
            const auto frags =
                scheme == RedState::kRep
                    ? std::vector<std::vector<std::uint8_t>>(
                          store_.config().replicas, value)
                    : store_.codec().encode_object(value);
            store_.payload_store_mutable()->store(replacement, key, frags[i]);
          } catch (const TransientFault&) {
            throw;  // defer the whole object; retried by resume_pending()
          } catch (const std::exception&) {
            // Metadata-only object; nothing to rebuild on the payload plane.
          }
        }

        m.src[i] = replacement;
        report.device_time += latency;
        ++report.fragments_rebuilt;
        report.bytes_rebuilt += frag_bytes;
        meta_changed = true;
      }

      // 2. Redirect pending destinations (no data lives there yet).
      for (std::uint32_t i = 0; i < m.dst.size(); ++i) {
        if (m.dst[i] != failed) continue;
        m.dst[i] = pick_replacement(m, failed);
        ++report.placements_updated;
        meta_changed = true;
      }

      if (meta_changed) {
        store_.table().mutate(oid, [&m](ObjectMeta& stored) { stored = m; });
        store_.table().log_change(
            oid, meta::EpochLogEntry{now, m.state, m.src, m.dst});
        ++report.placements_updated;
      }
    } catch (const TransientFault&) {
      // A survivor read or replacement write failed transiently (injected
      // device/network fault). The object still references the dead server;
      // defer it to a resume_pending() pass instead of aborting the repair.
      ++report.deferred;
    }
  }

  if (report.deferred == 0) {
    pending_.erase(failed);
  } else {
    report.completed = false;
  }
  return report;
}

std::size_t RepairManager::objects_at_risk(ServerId candidate) {
  std::size_t at_risk = 0;
  const auto& config = store_.config();
  auto& cluster = store_.cluster();
  store_.table().for_each([&](const ObjectMeta& m) {
    if (!m.src.contains(candidate)) return;
    const RedState scheme = meta::current_scheme(m.state);
    // Survivable if at least one replica, or at least k shards, remain.
    // Count fragments that would actually survive: a slot doesn't count if
    // it sits on the candidate, on an already-failed server (cascading
    // failure), or was never materialized / already wiped.
    std::size_t survivors = 0;
    for (std::uint32_t i = 0; i < m.src.size(); ++i) {
      const ServerId s = m.src[i];
      if (s == candidate || failed_.contains(s)) continue;
      if (!cluster.server(s).has_fragment(
              cluster::fragment_key(m.oid, m.placement_version, i))) {
        continue;
      }
      ++survivors;
    }
    const std::size_t needed =
        scheme == RedState::kRep ? 1 : config.ec_data;
    if (survivors < needed) ++at_risk;
  });
  return at_risk;
}

}  // namespace chameleon::kv
