// Failure recovery: rebuild every fragment a failed server hosted onto
// replacement servers. Replicated objects re-copy from a surviving replica;
// encoded objects reconstruct the lost shard from any k survivors through
// the Reed-Solomon codec. This is the availability story the paper's
// redundancy schemes exist for (and what the mapping table's epoch logs
// recover): Chameleon's balancing must never reduce an object below its
// fault-tolerance target.
#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "kv/kv_store.hpp"

namespace chameleon::kv {

struct RepairReport {
  std::size_t objects_scanned = 0;
  std::size_t fragments_rebuilt = 0;   ///< data actually reconstructed
  std::size_t placements_updated = 0;  ///< src/dst entries redirected
  std::size_t unrecoverable = 0;  ///< too few surviving fragments to rebuild
  std::size_t deferred = 0;  ///< objects postponed by transient faults
  std::uint64_t bytes_rebuilt = 0;
  Nanos device_time = 0;  ///< read + reconstruct-write service time
  /// False when the pass was interrupted (coordinator crash) or deferred
  /// objects remain; the server stays in pending_repairs() until a
  /// resume_pending() pass completes it.
  bool completed = true;
};

class RepairManager {
 public:
  explicit RepairManager(KvStore& store) : store_(store) {}

  /// Rebuild everything `failed` hosted. Data held on the failed server is
  /// reconstructed onto replacement servers (ring successors not already in
  /// the object's set); pending destinations that pointed at the failed
  /// server are redirected without data movement. `now` stamps the epoch
  /// log entries. The failed server is remembered as dead — later repairs
  /// never pick it as a replacement — until mark_recovered() is called.
  RepairReport repair_server(ServerId failed, Epoch now);

  /// Re-run the repair of every server whose pass was interrupted or left
  /// deferred objects. Idempotent: a resumed pass rescans the table, and
  /// objects already redirected off the dead server are not affected again.
  /// Returns the number of repairs that ran (whether or not they completed).
  std::size_t resume_pending(Epoch now);
  const std::set<ServerId>& pending_repairs() const { return pending_; }

  /// Install a crash hook for fault injection: called before each object
  /// with the number of objects processed so far in this pass; returning
  /// true aborts the pass (as a coordinator crash would), leaving the server
  /// pending. The check survives until clear_interrupt_check().
  void set_interrupt_check(std::function<bool(std::size_t)> check) {
    interrupt_check_ = std::move(check);
  }
  void clear_interrupt_check() { interrupt_check_ = nullptr; }

  /// Declare a previously failed server healthy again (re-provisioned).
  /// A pending (interrupted) repair stays pending: fragments the wipe took
  /// are still missing and must be rebuilt by resume_pending().
  void mark_recovered(ServerId server) { failed_.erase(server); }
  const std::set<ServerId>& failed_servers() const { return failed_; }

  /// Fault-tolerance audit: returns the number of objects whose current
  /// fragment set would be lost if `candidate` failed *and* the object has
  /// no redundancy to rebuild from (0 means the cluster tolerates the
  /// failure). Used by tests and operators before decommissioning.
  std::size_t objects_at_risk(ServerId candidate);

 private:
  /// Pick a replacement server, walking the ring from the object's hash
  /// past servers already in the set and `failed`.
  ServerId pick_replacement(const meta::ObjectMeta& m, ServerId failed);

  /// The repair pass body. `wipe` is true only for a fresh failure: a
  /// resumed pass must not wipe again, because the server may have rejoined
  /// (and taken new writes) while its repair was pending.
  RepairReport run_repair(ServerId failed, Epoch now, bool wipe);

  KvStore& store_;
  std::set<ServerId> failed_;
  std::set<ServerId> pending_;  ///< interrupted/deferred repairs to resume
  std::function<bool(std::size_t)> interrupt_check_;
};

}  // namespace chameleon::kv
