#include "kv/kv_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "cluster/device_exec.hpp"
#include "common/fnv.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chameleon::kv {

using meta::ObjectMeta;
using meta::RedState;
using meta::ServerSet;

namespace {

/// Record put-side metrics; shared by the three put_impl exit paths. In
/// deferred mode the latency observation runs at drain time with the
/// resolved value (see OpScope::finish), so both modes feed the histogram
/// the same numbers.
void record_put_latency(Nanos latency) {
  static auto& puts = obs::metrics().counter(
      "chameleon_kv_puts_total", {}, "Object put operations");
  static auto& latency_hist = obs::metrics().histogram(
      "chameleon_put_latency_ns", 0.0, 1e8, 1000, {},
      "End-to-end put latency (device + network), in nanoseconds");
  puts.inc();
  latency_hist.observe(static_cast<double>(latency));
}

/// Scopes one client-visible operation on the device executor (when one is
/// engaged): fan-out groups opened inside resolve into the op's latency at
/// the next drain. Inert in sequential mode. Unwinding without finish()
/// aborts the op, discarding its latency bookkeeping — the device closures
/// already deferred mirror work sequential mode performed before the fault.
class OpScope {
 public:
  explicit OpScope(cluster::DeviceExecutor* exec)
      : exec_(exec != nullptr && exec->engaged() ? exec : nullptr) {
    if (exec_ != nullptr) exec_->op_begin();
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;
  ~OpScope() {
    if (exec_ != nullptr && !finished_) exec_->op_abort();
  }

  bool deferred() const { return exec_ != nullptr; }

  /// Close the op: `result.latency` currently holds the inline part. Sets
  /// result.pending to the executor token; `on_resolved` (optional) runs at
  /// drain with the full latency.
  void finish(OpResult& result, std::function<void(Nanos)> on_resolved = {}) {
    if (exec_ == nullptr) return;
    result.pending = exec_->op_end(result.latency, std::move(on_resolved));
    finished_ = true;
  }

 private:
  cluster::DeviceExecutor* exec_;
  bool finished_ = false;
};

/// Scopes one parallel fan-out (the "max over servers" loops). close(max)
/// takes the running max of the *inline* members and returns what the
/// caller should add to its latency: the max itself in sequential mode, 0 in
/// deferred mode (the group then contributes max(inline, deferred slots) to
/// the enclosing op at drain).
class GroupScope {
 public:
  explicit GroupScope(cluster::DeviceExecutor* exec)
      : exec_(exec != nullptr && exec->engaged() ? exec : nullptr) {
    if (exec_ != nullptr) exec_->group_begin();
  }
  GroupScope(const GroupScope&) = delete;
  GroupScope& operator=(const GroupScope&) = delete;
  ~GroupScope() {
    if (exec_ != nullptr && !closed_) exec_->group_end(0);
  }

  Nanos close(Nanos inline_max) {
    if (exec_ == nullptr) return inline_max;
    closed_ = true;
    exec_->group_end(inline_max);
    return 0;
  }

 private:
  cluster::DeviceExecutor* exec_;
  bool closed_ = false;
};

/// Close a put's op scope (deferred mode) or record its metrics inline
/// (sequential mode); shared by the three put_impl exit paths.
void finish_put(OpScope& scope, OpResult& result) {
  if (scope.deferred()) {
    std::function<void(Nanos)> on_resolved;
    if (obs::enabled()) on_resolved = &record_put_latency;
    scope.finish(result, std::move(on_resolved));
  } else if (obs::enabled()) {
    record_put_latency(result.latency);
  }
}

}  // namespace

KvStore::KvStore(cluster::Cluster& cluster, meta::MappingTable& table,
                 const KvConfig& config)
    : cluster_(cluster),
      table_(table),
      config_(config),
      codec_(config.ec_total, config.ec_data) {
  if (config_.replicas == 0) {
    throw std::invalid_argument("KvConfig: bad redundancy parameters");
  }
  if (config_.replicas > meta::ServerSet::capacity() ||
      config_.ec_total > meta::ServerSet::capacity()) {
    throw std::invalid_argument(
        "KvConfig: redundancy set exceeds ServerSet inline capacity");
  }
  if (cluster_.size() < std::max(config_.replicas, config_.ec_total)) {
    throw std::invalid_argument("KvStore: cluster smaller than redundancy set");
  }
}

void KvStore::enable_payloads() {
  if (!payloads_) payloads_ = std::make_unique<PayloadStore>();
}

ServerSet KvStore::place(ObjectId oid, RedState scheme) const {
  const std::size_t n = scheme == RedState::kRep ? config_.replicas
                                                 : config_.ec_total;
  const auto servers = cluster_.ring().successors(placement_hash(oid), n);
  ServerSet out;
  for (const ServerId s : servers) out.push_back(s);
  return out;
}

std::uint64_t KvStore::fragment_bytes(std::uint64_t object_bytes,
                                      RedState scheme) const {
  if (scheme == RedState::kRep) return object_bytes;
  return config_.stripe_geometry(cluster_.ssd_config().page_size_bytes)
      .shard_bytes(object_bytes);
}

KvStore::FragmentPayloads KvStore::shard_payload(
    const std::vector<std::uint8_t>& value, RedState scheme) const {
  if (scheme == RedState::kRep) {
    return FragmentPayloads(config_.replicas, value);
  }
  return codec_.encode_object(value, codec_pool_);
}

flashsim::StreamHint KvStore::stream_hint(double heat) const {
  if (!config_.multi_stream) return flashsim::StreamHint::kDefault;
  return heat >= config_.hot_stream_threshold ? flashsim::StreamHint::kHot
                                              : flashsim::StreamHint::kCold;
}

Nanos KvStore::write_fragments(ObjectId oid, std::uint64_t bytes,
                               RedState scheme, const ServerSet& servers,
                               std::uint32_t version,
                               const FragmentPayloads* payloads,
                               flashsim::StreamHint hint) {
  if (servers.size() != fragments_of(scheme)) {
    throw std::invalid_argument(
        "KvStore::write_fragments: wrong fragment-set size for scheme");
  }
  const std::uint64_t frag_bytes = fragment_bytes(bytes, scheme);
  GroupScope group(cluster_.executor());
  Nanos latency = 0;  // fragments are written in parallel -> take the max
  for (std::uint32_t i = 0; i < servers.size(); ++i) {
    const auto key = cluster::fragment_key(oid, version, i);
    Nanos l = 0;
    try {
      l = cluster_.server(servers[i]).write_fragment(key, frag_bytes, hint);
    } catch (const TransientFault&) {
      // Annotate with the failing server so the retry layer can mark it
      // suspect. Fragments written so far stay in place: a retried put
      // overwrites them under the same keys, so no cleanup is needed.
      throw WriteFault(servers[i]);
    }
    latency = std::max(latency, l);
    if (payloads_ && payloads != nullptr) {
      payloads_->store(servers[i], key, (*payloads)[i]);
    }
  }
  return group.close(latency);
}

void KvStore::remove_fragments(ObjectId oid, RedState scheme,
                               const ServerSet& servers,
                               std::uint32_t version) {
  (void)scheme;
  for (std::uint32_t i = 0; i < servers.size(); ++i) {
    const auto key = cluster::fragment_key(oid, version, i);
    cluster_.server(servers[i]).remove_fragment(key);
    if (payloads_) payloads_->erase(servers[i], key);
  }
}

Nanos KvStore::network_fanout(std::uint64_t bytes, RedState scheme,
                              cluster::Traffic traffic) {
  Nanos latency = cluster_.network().transfer(traffic, bytes);
  if (scheme == RedState::kRep) {
    latency = std::max(latency,
                       cluster_.network().transfer(
                           cluster::Traffic::kReplication,
                           bytes * (config_.replicas - 1)));
  } else {
    const std::uint64_t shard = fragment_bytes(bytes, RedState::kEc);
    latency = std::max(latency,
                       cluster_.network().transfer(
                           cluster::Traffic::kEcDistribution,
                           shard * (config_.ec_total - 1)));
  }
  return latency;
}

OpResult KvStore::put(ObjectId oid, std::uint64_t bytes, Epoch now) {
  return put_impl(oid, bytes, now, nullptr);
}

OpResult KvStore::put_value(ObjectId oid, std::span<const std::uint8_t> value,
                            Epoch now) {
  if (!payloads_) {
    throw std::logic_error("KvStore::put_value: payloads not enabled");
  }
  const std::vector<std::uint8_t> copy(value.begin(), value.end());
  return put_impl(oid, copy.size(), now, &copy);
}

OpResult KvStore::put_impl(ObjectId oid, std::uint64_t bytes, Epoch now,
                           const std::vector<std::uint8_t>* value) {
  OpResult result;
  OpScope scope(cluster_.executor());

  auto existing = table_.get(oid);
  if (!existing) {
    ObjectMeta m;
    m.oid = oid;
    m.size_bytes = bytes;
    m.state = config_.initial_scheme;
    m.placement_version = 0;
    m.src = place(oid, m.state);
    m.state_since = now;
    m.heat_epoch = now;
    m.note_write(now);
    // Fault-ordering: ship the bytes over the network first, then program
    // the devices, and only then insert the mapping entry. A fault anywhere
    // in between leaves no table entry, so a retried create starts clean.
    result.latency =
        network_fanout(bytes, m.state, cluster::Traffic::kClientWrite);
    FragmentPayloads frags;
    if (value != nullptr) frags = shard_payload(*value, m.state);
    result.latency += write_fragments(oid, bytes, m.state, m.src, 0,
                                      value ? &frags : nullptr,
                                      stream_hint(m.heat(now)));
    if (!table_.create(m)) {
      throw std::logic_error("KvStore::put: concurrent create");
    }
    result.state = m.state;
    finish_put(scope, result);
    return result;
  }

  ObjectMeta m = *existing;
  m.note_write(now);
  m.size_bytes = bytes;

  // A destination that has filled up since the transition was scheduled
  // cancels the move: the update is applied in place instead.
  bool cancelled_in_place = false;
  if (meta::is_intermediate(m.state)) {
    for (const ServerId s : m.dst) {
      if (!m.src.contains(s) &&
          cluster_.server(s).logical_utilization() > config_.dst_space_guard) {
        m.state = meta::current_scheme(m.state);
        m.dst.clear();
        m.state_since = now;
        cancelled_in_place = true;
        break;
      }
    }
  }

  // Fault-ordering: network fan-out precedes every device write (the client
  // must ship the bytes before servers can program them), and the old
  // fragments of a lazy transition are invalidated only after every new
  // fragment landed — a fault mid-materialization leaves the source array
  // intact and readable, and the retried put redoes the whole transition.
  const RedState fanout_scheme = meta::is_intermediate(m.state)
                                     ? meta::target_scheme(m.state)
                                     : m.state;
  result.latency =
      network_fanout(bytes, fanout_scheme, cluster::Traffic::kClientWrite);

  if (meta::is_intermediate(m.state)) {
    // Lazy transition: this very update materializes the pending scheme on
    // the destination servers; the old fragments are merely invalidated
    // (trim — no flash writes), which is the EWO/late-REP/late-EC payoff.
    const RedState intermediate = m.state;
    const RedState old_scheme = meta::current_scheme(m.state);
    const RedState new_scheme = meta::target_scheme(m.state);
    const std::uint32_t new_version = m.placement_version + 1;
    FragmentPayloads frags;
    if (value != nullptr) frags = shard_payload(*value, new_scheme);
    result.latency += write_fragments(oid, bytes, new_scheme, m.dst,
                                      new_version, value ? &frags : nullptr,
                                      stream_hint(m.heat(now)));
    remove_fragments(oid, old_scheme, m.src, m.placement_version);
    m.src = m.dst;
    m.dst.clear();
    m.state = new_scheme;
    m.placement_version = new_version;
    m.state_since = now;
    result.converted = true;
    table_.log_change(oid, meta::EpochLogEntry{now, new_scheme, m.src, {}});
    if (obs::enabled()) {
      static auto& offloads = obs::metrics().counter(
          "chameleon_ewo_offloads_total", {},
          "Lazy transitions materialized by an incoming write (EWO payoff)");
      offloads.inc();
      auto& sink = obs::trace();
      if (sink.accepts(obs::TraceType::kEwoOffload)) {
        obs::TraceEvent e;
        e.type = obs::TraceType::kEwoOffload;
        e.epoch = now;
        e.oid = oid;
        e.from = std::string(meta::red_state_name(intermediate));
        e.to = std::string(meta::red_state_name(new_scheme));
        sink.record(std::move(e));
      }
    }
  } else {
    FragmentPayloads frags;
    if (value != nullptr) frags = shard_payload(*value, m.state);
    result.latency += write_fragments(oid, bytes, m.state, m.src,
                                      m.placement_version,
                                      value ? &frags : nullptr,
                                      stream_hint(m.heat(now)));
  }
  result.state = m.state;

  table_.mutate(oid, [&m](ObjectMeta& stored) { stored = m; });
  if (cancelled_in_place) {
    // Logged only after the state change is durable in the table: a fault
    // during the write above must not leave the log ahead of the metadata.
    table_.log_change(oid, meta::EpochLogEntry{now, m.state, m.src, {}});
  }
  finish_put(scope, result);
  return result;
}

Nanos KvStore::read_one_fragment(ServerId server, std::uint64_t key) {
  auto& node = cluster_.server(server);
  if (!node.has_fragment(key)) {
    // E.g. the server was wiped by a repair that has not finished rebuilding
    // yet; callers fall back to the surviving redundancy.
    throw ReadFault(server, "fragment missing");
  }
  try {
    return node.read_fragment(key);
  } catch (const TransientFault&) {
    throw ReadFault(server, "uncorrectable device read");
  }
}

Nanos KvStore::read_fragments_for_object(const ObjectMeta& m) {
  const RedState scheme = meta::current_scheme(m.state);
  GroupScope group(cluster_.executor());
  Nanos latency = 0;
  if (scheme == RedState::kRep) {
    // Any replica holds the whole object; rotate deterministically.
    const std::uint32_t i = static_cast<std::uint32_t>(m.oid % m.src.size());
    latency = read_one_fragment(
        m.src[i], cluster::fragment_key(m.oid, m.placement_version, i));
  } else {
    // Read the k data shards in parallel; parity only on degraded reads.
    for (std::uint32_t i = 0; i < config_.ec_data; ++i) {
      latency = std::max(
          latency,
          read_one_fragment(
              m.src[i], cluster::fragment_key(m.oid, m.placement_version, i)));
    }
  }
  return group.close(latency);
}

OpResult KvStore::get(ObjectId oid, Epoch now) {
  (void)now;  // reads do not contribute to write heat (Eq 1 counts writes)
  const auto existing = table_.get(oid);
  if (!existing) {
    throw std::out_of_range("KvStore::get: unknown object");
  }
  OpResult result;
  result.state = existing->state;
  OpScope scope(cluster_.executor());
  // Intermediate states: the source array still holds the latest bytes
  // (paper Fig 3 / §III-C); read_fragments_for_object reads from src.
  result.latency = read_fragments_for_object(*existing);
  result.latency += cluster_.network().transfer(cluster::Traffic::kClientRead,
                                                existing->size_bytes);
  if (obs::enabled()) {
    static auto& gets = obs::metrics().counter(
        "chameleon_kv_gets_total", {}, "Object get operations");
    gets.inc();
  }
  scope.finish(result);
  return result;
}

OpResult KvStore::get_degraded(ObjectId oid, Epoch now,
                               const std::set<ServerId>& down) {
  (void)now;
  const auto existing = table_.get(oid);
  if (!existing) {
    throw std::out_of_range("KvStore::get_degraded: unknown object");
  }
  const ObjectMeta& m = *existing;
  const RedState scheme = meta::current_scheme(m.state);
  OpResult result;
  result.state = m.state;
  OpScope scope(cluster_.executor());

  if (scheme == RedState::kRep) {
    GroupScope group(cluster_.executor());
    bool served = false;
    for (std::uint32_t i = 0; i < m.src.size(); ++i) {
      const std::uint32_t idx =
          static_cast<std::uint32_t>((m.oid + i) % m.src.size());
      if (down.contains(m.src[idx])) continue;
      try {
        result.latency = read_one_fragment(
            m.src[idx], cluster::fragment_key(m.oid, m.placement_version, idx));
      } catch (const TransientFault&) {
        continue;  // replica unreadable right now -> try the next one
      }
      served = true;
      break;
    }
    if (!served) {
      throw std::runtime_error("KvStore::get_degraded: all replicas down");
    }
    result.latency = group.close(result.latency);
  } else {
    // Gather any k live shards; using a parity shard costs a decode pass.
    GroupScope group(cluster_.executor());
    std::size_t gathered = 0;
    bool used_parity = false;
    for (std::uint32_t i = 0; i < m.src.size() && gathered < config_.ec_data;
         ++i) {
      if (down.contains(m.src[i])) continue;
      Nanos l = 0;
      try {
        l = read_one_fragment(
            m.src[i], cluster::fragment_key(m.oid, m.placement_version, i));
      } catch (const TransientFault&) {
        continue;  // shard unreadable -> gather a parity shard instead
      }
      result.latency = std::max(result.latency, l);
      if (i >= config_.ec_data) used_parity = true;
      ++gathered;
    }
    if (gathered < config_.ec_data) {
      throw std::runtime_error(
          "KvStore::get_degraded: fewer than k shards survive");
    }
    result.latency = group.close(result.latency);
    if (used_parity) {
      result.latency += static_cast<Nanos>(
          config_.decode_ns_per_byte * static_cast<double>(m.size_bytes));
    }
  }
  result.latency += cluster_.network().transfer(cluster::Traffic::kClientRead,
                                                m.size_bytes);
  if (obs::enabled()) {
    static auto& degraded = obs::metrics().counter(
        "chameleon_degraded_reads_total", {},
        "Reads served from surviving redundancy (replica fallback or "
        "k-of-n shard reconstruction)");
    degraded.inc();
  }
  scope.finish(result);
  return result;
}

std::vector<std::uint8_t> KvStore::gather_value(
    const ObjectMeta& m, const std::set<ServerId>& down) const {
  if (!payloads_) {
    throw std::logic_error("KvStore::gather_value: payloads not enabled");
  }
  const RedState scheme = meta::current_scheme(m.state);
  if (scheme == RedState::kRep) {
    for (std::uint32_t i = 0; i < m.src.size(); ++i) {
      if (down.contains(m.src[i])) continue;
      const auto bytes = payloads_->load(
          m.src[i], cluster::fragment_key(m.oid, m.placement_version, i));
      if (bytes) return *bytes;
    }
    throw std::runtime_error("KvStore: all replicas unavailable");
  }
  // EC: collect surviving shards, reconstruct if any data shard is missing.
  std::vector<std::optional<std::vector<std::uint8_t>>> shards(
      config_.ec_total);
  for (std::uint32_t i = 0; i < m.src.size(); ++i) {
    if (down.contains(m.src[i])) continue;
    shards[i] = payloads_->load(
        m.src[i], cluster::fragment_key(m.oid, m.placement_version, i));
  }
  const auto data = codec_.reconstruct_data(shards, codec_pool_);
  return ec::ReedSolomon::join(data, m.size_bytes);
}

std::vector<std::uint8_t> KvStore::get_value(ObjectId oid, Epoch now,
                                             const std::set<ServerId>& down,
                                             OpResult* op_out) {
  const auto existing = table_.get(oid);
  if (!existing) {
    throw std::out_of_range("KvStore::get_value: unknown object");
  }
  // Account device reads + network; with suspects the degraded path skips
  // them (and any fragment that turns out to be missing or unreadable).
  const OpResult op =
      down.empty() ? get(oid, now) : get_degraded(oid, now, down);
  if (op_out != nullptr) *op_out = op;
  return gather_value(*existing, down);
}

bool KvStore::remove(ObjectId oid) {
  const auto existing = table_.get(oid);
  if (!existing) return false;
  remove_fragments(oid, meta::current_scheme(existing->state), existing->src,
                   existing->placement_version);
  return table_.erase(oid);
}

Nanos KvStore::relocate(ObjectId oid, const ServerSet& dst,
                        cluster::Traffic traffic, Epoch now) {
  auto existing = table_.get(oid);
  if (!existing) {
    throw std::out_of_range("KvStore::relocate: unknown object");
  }
  ObjectMeta m = *existing;
  const RedState scheme = meta::current_scheme(m.state);

  // Bulk copy: read every live fragment, push it over the network, program
  // it at the destination. This is the data-migration cost Chameleon avoids
  // and EDM pays.
  Nanos latency = read_fragments_for_object(m);
  const std::uint64_t frag_bytes = fragment_bytes(m.size_bytes, scheme);
  const std::uint64_t moved_bytes = frag_bytes * fragments_of(scheme);
  latency += cluster_.network().transfer(traffic, moved_bytes);

  FragmentPayloads frags;
  bool have_payload = false;
  if (payloads_) {
    frags.resize(fragments_of(scheme));
    have_payload = true;
    for (std::uint32_t i = 0; i < m.src.size(); ++i) {
      const auto bytes = payloads_->load(
          m.src[i], cluster::fragment_key(m.oid, m.placement_version, i));
      if (!bytes) {
        have_payload = false;
        break;
      }
      frags[i] = *bytes;
    }
  }

  const std::uint32_t new_version = m.placement_version + 1;
  latency += write_fragments(oid, m.size_bytes, scheme, dst, new_version,
                             have_payload ? &frags : nullptr);
  remove_fragments(oid, scheme, m.src, m.placement_version);

  m.src = dst;
  m.dst.clear();
  m.state = scheme;  // any pending lazy transition is superseded
  m.placement_version = new_version;
  table_.mutate(oid, [&m](ObjectMeta& stored) { stored = m; });
  table_.log_change(oid, meta::EpochLogEntry{now, m.state, m.src, {}});
  if (obs::enabled()) {
    obs::metrics()
        .counter("chameleon_relocations_total",
                 {{"kind", cluster::traffic_name(traffic)}},
                 "Eager bulk object relocations by traffic class")
        .inc();
  }
  return latency;
}

Nanos KvStore::convert(ObjectId oid, RedState target, const ServerSet& dst,
                       cluster::Traffic traffic, Epoch now) {
  if (target != RedState::kRep && target != RedState::kEc) {
    throw std::invalid_argument("KvStore::convert: target must be REP or EC");
  }
  auto existing = table_.get(oid);
  if (!existing) {
    throw std::out_of_range("KvStore::convert: unknown object");
  }
  ObjectMeta m = *existing;
  const RedState old_scheme = meta::current_scheme(m.state);

  // Eager conversion (what HDFS-RAID-style downgrades do): gather the
  // object, re-encode/replicate, distribute, invalidate the old fragments.
  Nanos latency = read_fragments_for_object(m);
  const std::uint64_t written_bytes =
      fragment_bytes(m.size_bytes, target) * fragments_of(target);
  latency += cluster_.network().transfer(traffic, m.size_bytes + written_bytes);

  FragmentPayloads frags;
  bool have_payload = false;
  if (payloads_) {
    try {
      const auto value = gather_value(m, {});
      frags = shard_payload(value, target);
      have_payload = true;
    } catch (const std::exception&) {
      have_payload = false;  // object was stored metadata-only
    }
  }

  const std::uint32_t new_version = m.placement_version + 1;
  latency += write_fragments(oid, m.size_bytes, target, dst, new_version,
                             have_payload ? &frags : nullptr);
  remove_fragments(oid, old_scheme, m.src, m.placement_version);

  m.src = dst;
  m.dst.clear();
  m.state = target;
  m.placement_version = new_version;
  table_.mutate(oid, [&m](ObjectMeta& stored) { stored = m; });
  table_.log_change(oid, meta::EpochLogEntry{now, m.state, m.src, {}});
  if (obs::enabled()) {
    static auto& conversions = obs::metrics().counter(
        "chameleon_eager_conversions_total", {},
        "Eager REP<->EC conversions (read + re-encode + redistribute)");
    conversions.inc();
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kConversion)) {
      obs::TraceEvent e;
      e.type = obs::TraceType::kConversion;
      e.oid = oid;
      e.from = std::string(meta::red_state_name(old_scheme));
      e.to = std::string(meta::red_state_name(target));
      e.a = written_bytes;
      sink.record(std::move(e));
    }
  }
  return latency;
}

}  // namespace chameleon::kv
