#include "kv/scrubber.hpp"

#include <optional>
#include <vector>

namespace chameleon::kv {

using meta::ObjectMeta;
using meta::RedState;

ScrubReport Scrubber::scrub(Epoch now, bool repair) {
  ScrubReport report;
  // Collect oids first: repairs mutate the table mid-walk otherwise.
  std::vector<ObjectId> oids;
  store_.table().for_each(
      [&](const ObjectMeta& m) { oids.push_back(m.oid); });

  for (const ObjectId oid : oids) {
    const auto live = store_.table().get(oid);
    if (!live) continue;
    scrub_object(*live, now, repair, report);
    ++report.objects_checked;
  }
  return report;
}

void Scrubber::scrub_object(const ObjectMeta& m, Epoch now, bool repair,
                            ScrubReport& report) {
  (void)now;
  auto& cluster = store_.cluster();
  const RedState scheme = meta::current_scheme(m.state);
  const std::uint64_t frag_bytes = store_.fragment_bytes(m.size_bytes, scheme);

  // --- 1. presence: every fragment the table claims must exist ------------
  std::vector<std::uint32_t> missing;
  for (std::uint32_t i = 0; i < m.src.size(); ++i) {
    const auto key = cluster::fragment_key(m.oid, m.placement_version, i);
    if (!cluster.server(m.src[i]).has_fragment(key)) {
      missing.push_back(i);
    }
  }
  report.missing_fragments += missing.size();

  const std::size_t needed =
      scheme == RedState::kRep ? 1 : store_.config().ec_data;
  const std::size_t survivors = m.src.size() - missing.size();
  if (survivors < needed) {
    ++report.unrecoverable;
    return;
  }

  if (repair && !missing.empty()) {
    // Rebuild in place: read one survivor (REP) or k survivors (EC), then
    // rewrite the lost fragment at its original server and index.
    for (const std::uint32_t i : missing) {
      std::size_t read = 0;
      for (std::uint32_t j = 0;
           j < m.src.size() && read < (scheme == RedState::kRep ? 1 : needed);
           ++j) {
        const auto jkey = cluster::fragment_key(m.oid, m.placement_version, j);
        if (j == i || !cluster.server(m.src[j]).has_fragment(jkey)) continue;
        cluster.server(m.src[j]).read_fragment(jkey);
        ++read;
      }
      const auto key = cluster::fragment_key(m.oid, m.placement_version, i);
      cluster.server(m.src[i]).write_fragment(key, frag_bytes);
      if (store_.payloads_enabled()) {
        try {
          const auto value = store_.get_value(m.oid, 0, {m.src[i]});
          const auto frags =
              scheme == RedState::kRep
                  ? std::vector<std::vector<std::uint8_t>>(
                        store_.config().replicas, value)
                  : store_.codec().encode_object(value);
          store_.payload_store_mutable()->store(m.src[i], key, frags[i]);
        } catch (const std::exception&) {
          // Metadata-only object: nothing to restore on the payload plane.
        }
      }
      ++report.repaired;
    }
  }

  // --- 2. content: replica agreement / parity consistency (payload mode) --
  if (!store_.payloads_enabled() || !missing.empty()) return;
  const auto* payloads = store_.payload_store();

  if (scheme == RedState::kRep) {
    std::optional<std::vector<std::uint8_t>> reference;
    std::vector<std::uint32_t> bad;
    for (std::uint32_t i = 0; i < m.src.size(); ++i) {
      const auto bytes = payloads->load(
          m.src[i], cluster::fragment_key(m.oid, m.placement_version, i));
      if (!bytes) return;  // metadata-only object
      if (!reference) {
        reference = bytes;
      } else if (*bytes != *reference) {
        bad.push_back(i);
      }
    }
    report.corrupt_replicas += bad.size();
    if (repair && !bad.empty()) {
      // Majority-free heuristic: replica 0 is the reference copy.
      for (const std::uint32_t i : bad) {
        const auto key = cluster::fragment_key(m.oid, m.placement_version, i);
        cluster.server(m.src[i]).write_fragment(key, frag_bytes);
        store_.payload_store_mutable()->store(m.src[i], key, *reference);
        ++report.repaired;
      }
    }
    return;
  }

  // EC: verify the full shard set against the generator matrix.
  std::vector<std::vector<std::uint8_t>> shards;
  for (std::uint32_t i = 0; i < m.src.size(); ++i) {
    const auto bytes = payloads->load(
        m.src[i], cluster::fragment_key(m.oid, m.placement_version, i));
    if (!bytes) return;  // metadata-only object
    shards.push_back(*bytes);
  }
  if (store_.codec().verify(shards)) return;
  ++report.parity_mismatches;
  if (repair) {
    // Trust the data shards; regenerate parity from them.
    std::vector<std::vector<std::uint8_t>> data(
        shards.begin(),
        shards.begin() + static_cast<std::ptrdiff_t>(store_.config().ec_data));
    std::vector<std::vector<std::uint8_t>> parity(
        store_.config().ec_total - store_.config().ec_data);
    store_.codec().encode(data, parity);
    for (std::size_t p = 0; p < parity.size(); ++p) {
      const auto idx = static_cast<std::uint32_t>(store_.config().ec_data + p);
      const auto key = cluster::fragment_key(m.oid, m.placement_version, idx);
      cluster.server(m.src[idx]).write_fragment(key, frag_bytes);
      store_.payload_store_mutable()->store(m.src[idx], key,
                                            std::move(parity[p]));
      ++report.repaired;
    }
  }
}

}  // namespace chameleon::kv
