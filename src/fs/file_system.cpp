#include "fs/file_system.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace chameleon::fs {

namespace {

std::string serialize_stat(const FileStat& st) {
  std::ostringstream os;
  os << st.size << '|' << st.chunk_bytes << '|' << st.created << '|'
     << st.modified;
  return os.str();
}

FileStat deserialize_stat(const std::string& path, const std::string& body) {
  FileStat st;
  st.path = path;
  char sep = 0;
  std::istringstream is(body);
  is >> st.size >> sep >> st.chunk_bytes >> sep >> st.created >> sep >>
      st.modified;
  if (!is || st.chunk_bytes == 0) {
    throw std::runtime_error("ChameleonFs: corrupt inode for " + path);
  }
  return st;
}

}  // namespace

ChameleonFs::ChameleonFs(kv::KvStore& store, std::uint32_t chunk_bytes)
    : store_(store), client_(store), chunk_bytes_(chunk_bytes) {
  if (chunk_bytes_ == 0) {
    throw std::invalid_argument("ChameleonFs: chunk_bytes must be > 0");
  }
  store_.enable_payloads();
}

std::string ChameleonFs::inode_key(const std::string& path) {
  return "fs:inode:" + path;
}

std::string ChameleonFs::chunk_key(const std::string& path,
                                   std::uint64_t index) {
  return "fs:data:" + path + ":" + std::to_string(index);
}

FileStat ChameleonFs::load_inode(const std::string& path) const {
  if (!client_.contains(inode_key(path))) {
    throw std::out_of_range("ChameleonFs: no such file: " + path);
  }
  return deserialize_stat(path, client_.get_string(inode_key(path)));
}

void ChameleonFs::store_inode(const FileStat& st, Epoch now) {
  client_.put(inode_key(st.path), serialize_stat(st), now);
}

std::vector<std::string> ChameleonFs::load_directory() const {
  std::vector<std::string> paths;
  if (!client_.contains(kDirectoryKey)) return paths;
  const std::string body = client_.get_string(kDirectoryKey);
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) paths.push_back(line);
  }
  return paths;
}

void ChameleonFs::store_directory(const std::vector<std::string>& paths,
                                  Epoch now) {
  std::ostringstream os;
  for (const auto& p : paths) os << p << '\n';
  client_.put(kDirectoryKey, os.str(), now);
}

bool ChameleonFs::create(const std::string& path, Epoch now) {
  if (path.empty()) {
    throw std::invalid_argument("ChameleonFs: empty path");
  }
  if (exists(path)) return false;
  FileStat st;
  st.path = path;
  st.size = 0;
  st.chunk_bytes = chunk_bytes_;
  st.created = now;
  st.modified = now;
  store_inode(st, now);
  auto dir = load_directory();
  dir.push_back(path);
  std::sort(dir.begin(), dir.end());
  store_directory(dir, now);
  return true;
}

bool ChameleonFs::exists(const std::string& path) const {
  return client_.contains(inode_key(path));
}

bool ChameleonFs::unlink(const std::string& path) {
  if (!exists(path)) return false;
  const FileStat st = load_inode(path);
  for (std::uint64_t c = 0; c < st.chunk_count(); ++c) {
    client_.remove(chunk_key(path, c));
  }
  client_.remove(inode_key(path));
  auto dir = load_directory();
  dir.erase(std::remove(dir.begin(), dir.end(), path), dir.end());
  store_directory(dir, 0);
  return true;
}

std::vector<std::string> ChameleonFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& p : load_directory()) {
    if (p.rfind(prefix, 0) == 0) out.push_back(p);
  }
  return out;
}

std::optional<FileStat> ChameleonFs::stat(const std::string& path) const {
  if (!exists(path)) return std::nullopt;
  return load_inode(path);
}

std::vector<std::uint8_t> ChameleonFs::load_chunk(const FileStat& st,
                                                  std::uint64_t index,
                                                  Epoch now) {
  const std::string key = chunk_key(st.path, index);
  std::vector<std::uint8_t> bytes;
  if (client_.contains(key)) {
    bytes = client_.get(key, now);
  }
  // Nominal size of this chunk given the file size (tail may be short).
  const std::uint64_t start = index * st.chunk_bytes;
  const std::uint64_t nominal =
      st.size > start ? std::min<std::uint64_t>(st.chunk_bytes, st.size - start)
                      : 0;
  if (bytes.size() < nominal) bytes.resize(nominal, 0);  // sparse gap
  return bytes;
}

void ChameleonFs::store_chunk(const FileStat& st, std::uint64_t index,
                              std::vector<std::uint8_t> bytes, Epoch now) {
  client_.put(chunk_key(st.path, index), bytes, now);
}

void ChameleonFs::write(const std::string& path, std::uint64_t offset,
                        std::span<const std::uint8_t> data, Epoch now) {
  if (!exists(path)) create(path, now);
  FileStat st = load_inode(path);

  const std::uint64_t end = offset + data.size();
  std::uint64_t written = 0;
  for (std::uint64_t pos = offset; pos < end;) {
    const std::uint64_t index = pos / st.chunk_bytes;
    const std::uint64_t in_chunk = pos % st.chunk_bytes;
    const std::uint64_t take =
        std::min<std::uint64_t>(st.chunk_bytes - in_chunk, end - pos);

    // Grow the logical size first so load_chunk zero-fills correctly.
    st.size = std::max(st.size, pos + take);
    auto chunk = load_chunk(st, index, now);
    if (chunk.size() < in_chunk + take) chunk.resize(in_chunk + take, 0);
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(written), take,
                chunk.begin() + static_cast<std::ptrdiff_t>(in_chunk));
    store_chunk(st, index, std::move(chunk), now);

    pos += take;
    written += take;
  }
  st.modified = now;
  store_inode(st, now);
}

void ChameleonFs::write(const std::string& path, std::uint64_t offset,
                        std::string_view data, Epoch now) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
  write(path, offset, std::span<const std::uint8_t>(p, data.size()), now);
}

std::vector<std::uint8_t> ChameleonFs::read(const std::string& path,
                                            std::uint64_t offset,
                                            std::uint64_t length, Epoch now) {
  const FileStat st = load_inode(path);
  if (offset >= st.size) return {};
  const std::uint64_t end = std::min(st.size, offset + length);

  std::vector<std::uint8_t> out;
  out.reserve(end - offset);
  for (std::uint64_t pos = offset; pos < end;) {
    const std::uint64_t index = pos / st.chunk_bytes;
    const std::uint64_t in_chunk = pos % st.chunk_bytes;
    const std::uint64_t take =
        std::min<std::uint64_t>(st.chunk_bytes - in_chunk, end - pos);
    const auto chunk = load_chunk(st, index, now);
    for (std::uint64_t i = 0; i < take; ++i) {
      out.push_back(in_chunk + i < chunk.size()
                        ? chunk[in_chunk + i]
                        : std::uint8_t{0});
    }
    pos += take;
  }
  return out;
}

std::string ChameleonFs::read_string(const std::string& path, Epoch now) {
  const FileStat st = load_inode(path);
  const auto bytes = read(path, 0, st.size, now);
  return std::string(bytes.begin(), bytes.end());
}

void ChameleonFs::truncate(const std::string& path, std::uint64_t new_size,
                           Epoch now) {
  FileStat st = load_inode(path);
  if (new_size == st.size) return;

  if (new_size < st.size) {
    const std::uint64_t keep_chunks =
        (new_size + st.chunk_bytes - 1) / st.chunk_bytes;
    for (std::uint64_t c = keep_chunks; c < st.chunk_count(); ++c) {
      client_.remove(chunk_key(path, c));
    }
    // Trim the (possibly partial) tail chunk.
    if (new_size % st.chunk_bytes != 0 && keep_chunks > 0) {
      const std::uint64_t tail = keep_chunks - 1;
      auto chunk = load_chunk(st, tail, now);
      chunk.resize(new_size % st.chunk_bytes);
      store_chunk(st, tail, std::move(chunk), now);
    }
  }
  st.size = new_size;  // growth is sparse: gaps read back as zeroes
  st.modified = now;
  store_inode(st, now);
}

}  // namespace chameleon::fs
