// A small distributed file system layered on the Chameleon KV store — the
// integration the paper names as future work ("integrate Chameleon to other
// distributed storage types such as distributed file systems"). Files are
// chunked into fixed-size objects placed (and wear-balanced) like any other
// Chameleon data: inodes and directory listings are themselves KV objects,
// so the whole namespace inherits REP/EC redundancy, lazy transitions and
// repair.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kv/client.hpp"

namespace chameleon::fs {

struct FileStat {
  std::string path;
  std::uint64_t size = 0;
  std::uint32_t chunk_bytes = 0;
  Epoch created = 0;
  Epoch modified = 0;

  std::uint64_t chunk_count() const {
    return chunk_bytes == 0 ? 0 : (size + chunk_bytes - 1) / chunk_bytes;
  }
};

class ChameleonFs {
 public:
  /// `store` must outlive the file system. Payloads are enabled on it.
  explicit ChameleonFs(kv::KvStore& store,
                       std::uint32_t chunk_bytes = 256 * 1024);

  // --- namespace -----------------------------------------------------------
  /// Create an empty file. Returns false if it already exists.
  bool create(const std::string& path, Epoch now = 0);
  bool exists(const std::string& path) const;
  /// Remove a file and all its chunks. Returns false if absent.
  bool unlink(const std::string& path);
  /// Paths starting with `prefix`, sorted.
  std::vector<std::string> list(const std::string& prefix = "") const;
  std::optional<FileStat> stat(const std::string& path) const;

  // --- data ----------------------------------------------------------------
  /// Write `data` at `offset`, extending the file as needed (gaps read back
  /// as zeroes). Creates the file if it does not exist.
  void write(const std::string& path, std::uint64_t offset,
             std::span<const std::uint8_t> data, Epoch now = 0);
  void write(const std::string& path, std::uint64_t offset,
             std::string_view data, Epoch now = 0);

  /// Read up to `length` bytes at `offset` (short reads at EOF).
  std::vector<std::uint8_t> read(const std::string& path,
                                 std::uint64_t offset, std::uint64_t length,
                                 Epoch now = 0);
  std::string read_string(const std::string& path, Epoch now = 0);

  /// Grow (zero-fill) or shrink the file to `new_size`.
  void truncate(const std::string& path, std::uint64_t new_size,
                Epoch now = 0);

  std::uint32_t chunk_bytes() const { return chunk_bytes_; }

 private:
  static std::string inode_key(const std::string& path);
  static std::string chunk_key(const std::string& path, std::uint64_t index);
  static constexpr const char* kDirectoryKey = "fs:/directory";

  FileStat load_inode(const std::string& path) const;
  void store_inode(const FileStat& st, Epoch now);
  std::vector<std::string> load_directory() const;
  void store_directory(const std::vector<std::string>& paths, Epoch now);

  /// Fetch chunk `index` of `path`, zero-filled to its nominal size.
  std::vector<std::uint8_t> load_chunk(const FileStat& st,
                                       std::uint64_t index, Epoch now);
  void store_chunk(const FileStat& st, std::uint64_t index,
                   std::vector<std::uint8_t> bytes, Epoch now);

  kv::KvStore& store_;
  mutable kv::Client client_;
  std::uint32_t chunk_bytes_;
};

}  // namespace chameleon::fs
