#include "dist/replica.hpp"

namespace chameleon::dist {

void encode_replica_blob(std::uint64_t version, bool tombstone,
                         std::span<const std::uint8_t> value,
                         std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 9 + value.size());
  out.push_back(tombstone ? kReplicaFlagTombstone : 0);
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(version >> shift));
  }
  out.insert(out.end(), value.begin(), value.end());
}

bool decode_replica_blob(std::span<const std::uint8_t> blob,
                         ReplicaBlob& out) {
  if (blob.size() < 9) return false;
  const std::uint8_t flags = blob[0];
  if ((flags & ~kReplicaFlagTombstone) != 0) return false;
  out.tombstone = (flags & kReplicaFlagTombstone) != 0;
  out.version = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    out.version |= static_cast<std::uint64_t>(blob[1 + i]) << (8 * i);
  }
  if (out.tombstone && blob.size() != 9) return false;
  out.value.assign(blob.begin() + 9, blob.end());
  return true;
}

}  // namespace chameleon::dist
