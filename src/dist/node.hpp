// Per-process node runtime for the distributed data plane
// (docs/DISTRIBUTED.md): the piece a chameleon_server process attaches to
// its svc::Server when it runs as one member of a multi-node cluster.
//
//   - Implements svc::PeerHandler, so the server answers kPlace (ring
//     successor order for a key, over the full static node set) and
//     kPeerHealth (renewing the sender's lease in this node's membership
//     view) inline on its IO threads.
//   - Runs a PeerMonitor thread that heartbeats every peer over real TCP
//     (kPeerHealth frames through svc::ClientConn), so node<->node liveness
//     is observed symmetrically — each node maintains its own Membership —
//     and peers with port-file specs are resolved lazily as they bind.
//
// The node's ring is STATIC over the full configured node set: membership
// changes never move ring points, they only filter which successors the
// data plane targets. That is what keeps placement deterministic and key
// movement zero across fail/rejoin cycles.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "common/types.hpp"
#include "dist/membership.hpp"
#include "dist/peer.hpp"
#include "svc/server.hpp"

namespace chameleon::svc {
class ClientConn;
}  // namespace chameleon::svc

namespace chameleon::dist {

struct NodeConfig {
  std::uint32_t node_id = 0;
  /// Every OTHER node in the cluster (self excluded).
  std::vector<PeerSpec> peers;
  std::uint32_t ring_vnodes = 64;
  MembershipConfig membership;
  /// Heartbeat cadence of the peer monitor thread (real time).
  Nanos heartbeat_interval = 50 * kMillisecond;
  /// Socket send/recv timeout of one heartbeat probe.
  Nanos heartbeat_timeout = 250 * kMillisecond;
};

class NodeRuntime : public svc::PeerHandler {
 public:
  /// `state_fn` reports this node's serving state for heartbeat responses
  /// (0 recovering / 1 serving / 2 draining); defaults to always-serving.
  explicit NodeRuntime(const NodeConfig& config,
                       std::function<std::uint8_t()> state_fn = {});
  ~NodeRuntime() override;
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Spawn the peer monitor thread. Idempotent.
  void start();
  /// Stop and join the monitor thread. Idempotent; called by the dtor.
  void stop();

  // svc::PeerHandler
  bool place(std::span<const std::uint8_t> request,
             std::vector<std::uint8_t>& response) override;
  bool peer_health(std::span<const std::uint8_t> request,
                   std::vector<std::uint8_t>& response) override;

  const Membership& membership() const { return membership_; }
  Membership& membership() { return membership_; }
  const NodeConfig& config() const { return config_; }
  /// Ring successor order for a key hash over the FULL node set (self and
  /// every peer), unfiltered by liveness.
  std::vector<std::uint32_t> placement(std::uint64_t key_hash) const;
  std::uint64_t heartbeats_sent() const {
    return heartbeats_sent_.load(std::memory_order_relaxed);
  }

 private:
  struct PeerLink;  ///< monitor-thread-owned connection state per peer

  void monitor_loop();
  void probe_peer(PeerLink& link);

  NodeConfig config_;
  std::function<std::uint8_t()> state_fn_;
  Membership membership_;
  cluster::HashRing ring_;  ///< full static node set; never mutated

  std::vector<std::unique_ptr<PeerLink>> links_;
  std::thread monitor_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> heartbeats_sent_{0};
};

}  // namespace chameleon::dist
