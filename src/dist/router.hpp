// The routing tier of the multi-node data plane (docs/DISTRIBUTED.md).
//
// A dist::Router fronts N chameleon_server data nodes and speaks the SAME
// client wire protocol as a single server, so chameleon_loadgen and
// svc::ClientPool work against it unchanged. Behind the front door it:
//
//   - maps keys to nodes with a STATIC cluster::HashRing over the full node
//     set and filters the successor order through a lease-based Membership
//     view (live nodes only) — placement is deterministic, and membership
//     changes never move ring points;
//   - replicate mode: fans each PUT to the first `replicas` live successors
//     as versioned replica blobs (kReplicate), acks only when ALL of them
//     stored it, and sheds (kRetryLater) when fewer than `replicas` nodes
//     are live — an under-replicated ack could be silently lost to the one
//     node failure the model permits; reads consult every live node and
//     keep the highest version, so a rejoined node holding stale data can
//     never win;
//   - stripe mode: RS(k+m, k)-encodes each PUT and spreads the shards
//     round-robin over the live successor order (kStripeWrite), acks only
//     when every shard landed AND no node carries more than m shards (so
//     any single node failure leaves >= k shards reconstructable), shedding
//     otherwise; reads gather shards from all live nodes and reconstruct
//     the highest version with >= k shards, verifying the stripe CRC end
//     to end;
//   - deletes write versioned tombstones through the same paths, so a
//     rejoined node cannot resurrect a deleted key;
//   - heartbeats every node (kPeerHealth) from a monitor thread and ALSO
//     feeds data-plane RPC outcomes into the same Membership, so a
//     kill -9'd node is excluded on the next write that touches it and
//     re-absorbed once it heartbeats back as serving;
//   - polls WEAR_REPORT on a cadence and aggregates per-node erase counters
//     into a cluster-wide wear view (STATS); with `wear_route` the write
//     fan-out order prefers less-worn nodes — the cross-node extension of
//     the paper's wear-balancing lever. Off by default: it reorders
//     replica/shard placement, which otherwise stays byte-deterministic.
//
// Consistency model: single-router, all-targets-ack writes. With at most
// one node down at a time, every acked write (or delete) is readable at its
// latest version; kRetryLater is returned whenever the live set cannot
// satisfy a write, and clients retry with their usual backoff.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "common/types.hpp"
#include "dist/membership.hpp"
#include "dist/peer.hpp"
#include "ec/reed_solomon.hpp"
#include "kv/client.hpp"
#include "svc/wire.hpp"

namespace chameleon::svc {
class ClientConn;
class ClientPool;
}  // namespace chameleon::svc

namespace chameleon::dist {

enum class RouteMode : std::uint8_t { kReplicate, kStripe };
const char* route_mode_name(RouteMode mode);
/// Parse "replicate"/"stripe"; throws std::invalid_argument otherwise.
RouteMode route_mode_from_name(const std::string& name);

struct RouterConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< front-door listen port; 0 = ephemeral
  /// The data nodes (ports may be port-file specs, resolved lazily).
  std::vector<PeerSpec> nodes;
  RouteMode mode = RouteMode::kReplicate;
  std::uint32_t replicas = 2;  ///< replicate mode: copies per key
  std::uint32_t ec_k = 2;      ///< stripe mode: data shards
  std::uint32_t ec_m = 1;      ///< stripe mode: parity shards
  std::uint32_t ring_vnodes = 64;
  MembershipConfig membership;
  /// Sender id stamped into heartbeats and peer-op bodies; outside the node
  /// id space so data nodes never track the router as a peer.
  std::uint32_t router_id = 0xfffffffe;
  Nanos heartbeat_interval = 50 * kMillisecond;
  Nanos heartbeat_timeout = 250 * kMillisecond;
  /// Wear-view poll cadence (kWearReport to every live node); 0 disables
  /// polling (the view can still be injected for tests).
  Nanos wear_poll_interval = 0;
  /// Starting write version. 0 (the default) derives a floor from the wall
  /// clock (microseconds since the Unix epoch) so a restarted router stamps
  /// new writes above everything a previous incarnation stored on the data
  /// nodes; nonzero pins the counter exactly (deterministic tests). See the
  /// router-restart note in docs/DISTRIBUTED.md.
  std::uint64_t version_seed = 0;
  /// Order write targets by ascending aggregate wear (see file comment).
  bool wear_route = false;
  /// Per-node RPC policy: deliberately small — the router's own failover
  /// (placement over live nodes) is the real retry, and the CLIENT retries
  /// kRetryLater end to end.
  kv::RetryPolicy node_retry{.max_attempts = 2,
                             .base_backoff = 2 * kMillisecond,
                             .total_deadline = kSecond};
  std::uint32_t max_payload = svc::kDefaultMaxPayload;
  std::size_t pool_size = 4;     ///< connections per node pool
  Nanos io_timeout = 2 * kSecond;  ///< socket timeout of data-plane RPCs
  std::size_t max_sessions = 64;   ///< concurrent front-door connections
};

/// Point-in-time router counters (all monotone except live/sessions).
struct RouterStats {
  std::uint64_t requests_total = 0;
  std::uint64_t puts_total = 0;
  std::uint64_t gets_total = 0;
  std::uint64_t deletes_total = 0;
  std::uint64_t fanout_rpcs_total = 0;
  std::uint64_t fanout_failures_total = 0;
  std::uint64_t retry_later_total = 0;  ///< answers the router shed
  std::uint64_t not_found_total = 0;
  std::uint64_t stale_replicas_skipped_total = 0;  ///< older versions seen
  std::uint64_t reconstructions_total = 0;  ///< stripe reads needing parity
  std::uint64_t wear_polls_total = 0;
  std::uint64_t sessions_open = 0;
  std::uint64_t sessions_total = 0;
  std::uint64_t protocol_errors_total = 0;
};

/// One node's latest wear report, as aggregated by the router.
struct NodeWear {
  std::uint32_t node_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t total_erases = 0;
  std::vector<std::uint64_t> server_erases;
};

class Router {
 public:
  explicit Router(const RouterConfig& config);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind the front door, spawn the acceptor + monitor threads.
  void start();
  /// Stop accepting, tear down sessions, join every thread. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return config_.host; }
  const RouterConfig& config() const { return config_; }

  // --- routing core (also usable in-process, without the front door) ------
  svc::Status route_put(std::string_view key,
                        std::span<const std::uint8_t> value);
  svc::Status route_get(std::string_view key,
                        std::vector<std::uint8_t>& value_out);
  svc::Status route_delete(std::string_view key);
  /// Aggregate cluster digest: every node's DIGEST folded in ascending node
  /// id order into 16 hex chars. Throws TransientFault when a node is
  /// unreachable (the quiesced digest check wants all-or-nothing).
  std::string aggregate_digest();
  /// Write targets for `key` under the CURRENT membership view, in fan-out
  /// order (exposed for tests).
  std::vector<std::uint32_t> write_targets(std::string_view key);

  Membership& membership() { return membership_; }
  const Membership& membership() const { return membership_; }
  RouterStats stats() const;
  std::string stats_json() const;
  std::string health_json() const;
  /// Router readiness: every node has reported at least once (membership
  /// settled) and enough nodes are live to satisfy writes.
  bool serving() const;

  /// Latest aggregated wear view, ascending node id (nodes that never
  /// reported are absent). poll_wear_now() refreshes it synchronously.
  std::vector<NodeWear> wear_view() const;
  void poll_wear_now();
  /// Test hook: inject one node's wear report deterministically.
  void set_wear_for_test(const NodeWear& wear);

 private:
  struct NodePool;
  struct ProbeLink;

  /// The per-node client pool, (re)built lazily once the node's port
  /// resolves; returns nullptr while unresolved.
  svc::ClientPool* pool_for(std::uint32_t id);
  /// Live successor order for a key: ring successors over the full set,
  /// filtered through the membership view (then wear-ordered if enabled).
  std::vector<std::uint32_t> live_order(std::uint64_t key_hash,
                                        bool wear_order);
  /// One data-plane RPC with membership feedback. Returns std::nullopt on
  /// transport failure (the node was marked missed).
  std::optional<svc::Frame> node_call(std::uint32_t id, svc::Op op,
                                      std::vector<std::uint8_t> payload);

  svc::Status replicate_put(std::string_view key, std::uint64_t version,
                            bool tombstone,
                            std::span<const std::uint8_t> value);
  svc::Status stripe_put(std::string_view key, std::uint64_t version,
                         bool tombstone,
                         std::span<const std::uint8_t> value);
  svc::Status replicate_get(std::string_view key,
                            std::vector<std::uint8_t>& value_out);
  svc::Status stripe_get(std::string_view key,
                         std::vector<std::uint8_t>& value_out);

  void monitor_loop();
  void probe_node(ProbeLink& link);
  void accept_loop();
  void session_loop(int fd, std::uint64_t session_id);
  svc::Frame dispatch(const svc::Frame& request);

  RouterConfig config_;
  Membership membership_;
  cluster::HashRing ring_;  ///< full static node set; never mutated
  std::optional<ec::ReedSolomon> rs_;  ///< stripe mode only

  mutable std::mutex pools_mutex_;
  std::map<std::uint32_t, std::unique_ptr<NodePool>> pools_;

  std::vector<std::unique_ptr<ProbeLink>> probes_;  ///< monitor thread only

  mutable std::mutex wear_mutex_;
  std::map<std::uint32_t, NodeWear> wear_;

  /// Monotone write-version source (replica blobs / shard metas). Seeded in
  /// the constructor from config_.version_seed — by default a wall-clock
  /// floor that outranks every version a previous router incarnation stored
  /// on the (durable) data nodes.
  std::atomic<std::uint64_t> next_version_{1};

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::thread monitor_;
  std::mutex sessions_mutex_;
  std::map<std::uint64_t, int> session_fds_;
  std::map<std::uint64_t, std::thread> session_threads_;
  std::vector<std::uint64_t> finished_sessions_;  ///< reaped by the acceptor
  std::uint64_t next_session_id_ = 1;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::chrono::steady_clock::time_point start_time_{};

  // counters
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> puts_total_{0};
  std::atomic<std::uint64_t> gets_total_{0};
  std::atomic<std::uint64_t> deletes_total_{0};
  std::atomic<std::uint64_t> fanout_rpcs_total_{0};
  std::atomic<std::uint64_t> fanout_failures_total_{0};
  std::atomic<std::uint64_t> retry_later_total_{0};
  std::atomic<std::uint64_t> not_found_total_{0};
  std::atomic<std::uint64_t> stale_replicas_skipped_total_{0};
  std::atomic<std::uint64_t> reconstructions_total_{0};
  std::atomic<std::uint64_t> wear_polls_total_{0};
  std::atomic<std::uint64_t> sessions_open_{0};
  std::atomic<std::uint64_t> sessions_total_{0};
  std::atomic<std::uint64_t> protocol_errors_total_{0};
};

}  // namespace chameleon::dist
