#include "dist/membership.hpp"

#include <algorithm>
#include <stdexcept>

namespace chameleon::dist {

const char* peer_state_name(PeerState s) {
  switch (s) {
    case PeerState::kUnknown: return "unknown";
    case PeerState::kAlive: return "alive";
    case PeerState::kSuspect: return "suspect";
    case PeerState::kDead: return "dead";
  }
  return "unknown";
}

Membership::Membership(const MembershipConfig& config) : config_(config) {
  if (config_.suspect_after == 0 || config_.dead_after < config_.suspect_after) {
    throw std::invalid_argument(
        "dist: membership thresholds must satisfy "
        "1 <= suspect_after <= dead_after");
  }
}

void Membership::add_peer(const PeerSpec& spec) {
  std::lock_guard lock(mutex_);
  if (find_locked(spec.id) != nullptr) {
    throw std::invalid_argument("dist: duplicate peer id " +
                                std::to_string(spec.id));
  }
  Entry entry;
  entry.spec = spec;
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), spec.id,
      [](const Entry& e, std::uint32_t id) { return e.spec.id < id; });
  entries_.insert(pos, std::move(entry));
}

Membership::Entry* Membership::find_locked(std::uint32_t id) {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, std::uint32_t want) { return e.spec.id < want; });
  if (pos == entries_.end() || pos->spec.id != id) return nullptr;
  return &*pos;
}

const Membership::Entry* Membership::find_locked(std::uint32_t id) const {
  return const_cast<Membership*>(this)->find_locked(id);
}

void Membership::transition_locked(Entry& entry, PeerState next) {
  if (entry.state == next) return;
  if (entry.state == PeerState::kDead && next == PeerState::kAlive) {
    ++entry.rejoins;
    ++rejoins_;
  }
  entry.state = next;
  ++transitions_;
  ++view_version_;
}

bool Membership::probe_ok(std::uint32_t id) {
  std::lock_guard lock(mutex_);
  Entry* entry = find_locked(id);
  if (entry == nullptr) return false;
  ++entry->heartbeats_ok;
  entry->consecutive_misses = 0;
  const PeerState before = entry->state;
  transition_locked(*entry, PeerState::kAlive);
  return before != PeerState::kAlive;
}

bool Membership::probe_missed(std::uint32_t id) {
  std::lock_guard lock(mutex_);
  Entry* entry = find_locked(id);
  if (entry == nullptr) return false;
  ++entry->heartbeats_missed;
  ++entry->consecutive_misses;
  const PeerState before = entry->state;
  // kUnknown skips kSuspect but still settles to kDead at dead_after
  // misses: a peer that never answered has not joined yet, and one
  // crashed-at-boot node must not wedge the router's settled() gate
  // forever.
  if (entry->state == PeerState::kAlive &&
      entry->consecutive_misses >= config_.suspect_after) {
    transition_locked(*entry, PeerState::kSuspect);
  }
  if ((entry->state == PeerState::kSuspect ||
       entry->state == PeerState::kUnknown) &&
      entry->consecutive_misses >= config_.dead_after) {
    transition_locked(*entry, PeerState::kDead);
  }
  return before != entry->state;
}

PeerState Membership::state_of(std::uint32_t id) const {
  std::lock_guard lock(mutex_);
  const Entry* entry = find_locked(id);
  return entry == nullptr ? PeerState::kUnknown : entry->state;
}

bool Membership::is_live(std::uint32_t id) const {
  return state_of(id) == PeerState::kAlive;
}

std::vector<std::uint32_t> Membership::live_ids() const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint32_t> out;
  for (const Entry& e : entries_) {
    if (e.state == PeerState::kAlive) out.push_back(e.spec.id);
  }
  return out;
}

std::vector<std::uint32_t> Membership::all_ids() const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint32_t> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.spec.id);
  return out;
}

bool Membership::settled() const {
  std::lock_guard lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.state == PeerState::kUnknown) return false;
  }
  return true;
}

std::vector<PeerInfo> Membership::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<PeerInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    PeerInfo info;
    info.spec = e.spec;
    info.state = e.state;
    info.consecutive_misses = e.consecutive_misses;
    info.heartbeats_ok = e.heartbeats_ok;
    info.heartbeats_missed = e.heartbeats_missed;
    info.rejoins = e.rejoins;
    out.push_back(std::move(info));
  }
  return out;
}

PeerSpec Membership::spec_of(std::uint32_t id) const {
  std::lock_guard lock(mutex_);
  const Entry* entry = find_locked(id);
  if (entry == nullptr) {
    throw std::out_of_range("dist: unknown peer id " + std::to_string(id));
  }
  return entry->spec;
}

std::uint64_t Membership::view_version() const {
  std::lock_guard lock(mutex_);
  return view_version_;
}

std::uint64_t Membership::transitions_total() const {
  std::lock_guard lock(mutex_);
  return transitions_;
}

std::uint64_t Membership::rejoins_total() const {
  std::lock_guard lock(mutex_);
  return rejoins_;
}

std::size_t Membership::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::string Membership::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "[";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(e.spec.id);
    out += ",\"state\":\"";
    out += peer_state_name(e.state);
    out += "\",\"misses\":" + std::to_string(e.consecutive_misses);
    out += ",\"heartbeats_ok\":" + std::to_string(e.heartbeats_ok);
    out += ",\"heartbeats_missed\":" + std::to_string(e.heartbeats_missed);
    out += ",\"rejoins\":" + std::to_string(e.rejoins);
    out += '}';
  }
  out += ']';
  return out;
}

}  // namespace chameleon::dist
