// Peer addressing for the multi-node data plane (docs/DISTRIBUTED.md).
//
// A peer spec names one chameleon_server process: `id@host:port`, or
// `id@host:@/path/to/port_file` for processes bound to an ephemeral port —
// the port is then resolved lazily by reading the port file the server
// writes after bind (chameleon_server --port_file=). Lazy resolution is what
// lets multi-process tests spawn a whole cluster with port=0 and still wire
// every process to every other deterministically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace chameleon::dist {

struct PeerSpec {
  std::uint32_t id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;       ///< 0 = unresolved; see port_file
  std::string port_file;        ///< read (and re-read) when port == 0
};

/// Parse `id@host:port` or `id@host:@/path`. Throws std::invalid_argument
/// on malformed input (including duplicate-free checks left to callers).
PeerSpec parse_peer_spec(const std::string& text);

/// Parse a comma-separated list of peer specs; throws on malformed entries
/// or duplicate ids.
std::vector<PeerSpec> parse_peer_list(const std::string& text);

/// The spec's port if fixed, else the first whitespace-trimmed line of
/// spec.port_file. Empty optional while the file is missing/empty/invalid
/// (the server has not bound yet).
std::optional<std::uint16_t> resolve_port(const PeerSpec& spec);

/// Render a spec back to its `id@host:port` (or `id@host:@file`) form.
std::string format_peer_spec(const PeerSpec& spec);

}  // namespace chameleon::dist
