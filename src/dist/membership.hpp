// Cross-process membership with lease semantics (docs/DISTRIBUTED.md).
//
// This is core::Supervisor's lease/rejoin discipline lifted across process
// boundaries: instead of a virtual-clock lease, a peer's lease is "answered
// one of the last N liveness probes". Probes are PEER_HEALTH heartbeats (the
// monitor threads) plus — on the router — data-plane RPC outcomes, so a
// kill -9'd node is detected on the very next write that targets it, not
// only at the next heartbeat tick.
//
// State machine per peer (miss counts are consecutive):
//
//   kUnknown --ok--> kAlive                    (startup; not a rejoin)
//   kAlive   --misses >= suspect_after--> kSuspect
//   kSuspect --misses >= dead_after-->    kDead
//   kSuspect --ok--> kAlive                    (blip absorbed; not a rejoin)
//   kDead    --ok--> kAlive                    (rejoin; counted)
//
// Counting misses instead of wall-clock timeouts keeps every transition a
// deterministic function of the probe outcome sequence, which is what the
// membership unit tests pin down; the wall-clock lease duration is then
// (heartbeat interval) x dead_after in the steady state.
//
// Thread-safe; every method may be called from any thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dist/peer.hpp"

namespace chameleon::dist {

enum class PeerState : std::uint8_t { kUnknown, kAlive, kSuspect, kDead };
const char* peer_state_name(PeerState s);

struct MembershipConfig {
  std::uint32_t suspect_after = 2;  ///< consecutive misses -> kSuspect
  std::uint32_t dead_after = 4;     ///< consecutive misses -> kDead
};

struct PeerInfo {
  PeerSpec spec;
  PeerState state = PeerState::kUnknown;
  std::uint32_t consecutive_misses = 0;
  std::uint64_t heartbeats_ok = 0;
  std::uint64_t heartbeats_missed = 0;
  std::uint64_t rejoins = 0;  ///< kDead -> kAlive transitions
};

class Membership {
 public:
  explicit Membership(const MembershipConfig& config = {});

  /// Register a peer in kUnknown. Throws on duplicate id.
  void add_peer(const PeerSpec& spec);

  /// Record a successful probe of `id`. Returns true when the peer's state
  /// changed (kUnknown/kSuspect/kDead -> kAlive). Unknown ids are ignored
  /// (returns false) so late responses from removed peers are harmless.
  bool probe_ok(std::uint32_t id);

  /// Record a failed probe of `id` (timeout, refused connection, transport
  /// error). Returns true when the peer's state changed.
  bool probe_missed(std::uint32_t id);

  PeerState state_of(std::uint32_t id) const;
  /// True when the peer is kAlive (the only state the data plane targets).
  bool is_live(std::uint32_t id) const;
  /// Ids currently kAlive, ascending.
  std::vector<std::uint32_t> live_ids() const;
  /// All registered ids, ascending.
  std::vector<std::uint32_t> all_ids() const;
  /// True once no peer is kUnknown (every peer has answered or died) —
  /// the cluster-startup gate the router's HEALTH reports.
  bool settled() const;

  std::vector<PeerInfo> snapshot() const;
  PeerSpec spec_of(std::uint32_t id) const;

  /// Monotone version, bumped on every state transition. Carried in
  /// PEER_HEALTH bodies so either side can notice it missed a change.
  std::uint64_t view_version() const;
  std::uint64_t transitions_total() const;
  std::uint64_t rejoins_total() const;
  std::size_t size() const;

  /// Membership as a JSON array of per-peer objects (for STATS/HEALTH).
  std::string to_json() const;

 private:
  struct Entry {
    PeerSpec spec;
    PeerState state = PeerState::kUnknown;
    std::uint32_t consecutive_misses = 0;
    std::uint64_t heartbeats_ok = 0;
    std::uint64_t heartbeats_missed = 0;
    std::uint64_t rejoins = 0;
  };

  Entry* find_locked(std::uint32_t id);
  const Entry* find_locked(std::uint32_t id) const;
  void transition_locked(Entry& entry, PeerState next);

  MembershipConfig config_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  ///< sorted by spec.id
  std::uint64_t view_version_ = 1;
  std::uint64_t transitions_ = 0;
  std::uint64_t rejoins_ = 0;
};

}  // namespace chameleon::dist
