// Versioned replica blob codec (docs/DISTRIBUTED.md, replicate mode).
//
// The router never stores a client value verbatim on a node: it wraps it in
// a small self-describing blob carrying the write's monotone version and a
// tombstone flag. Versions are what make reads correct across fail/rejoin —
// a node that was down for a write rejoins holding an OLDER blob under the
// same key, and a reader that consults every live replica keeps only the
// highest version. Tombstones make deletes rejoin-safe the same way: a
// rejoined node cannot resurrect a deleted key, because the delete's higher
// version outranks the stale value.
//
// Layout: u8 flags | u64 version (little-endian) | value bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace chameleon::dist {

inline constexpr std::uint8_t kReplicaFlagTombstone = 0x01;

struct ReplicaBlob {
  std::uint64_t version = 0;
  bool tombstone = false;
  std::vector<std::uint8_t> value;  ///< empty for tombstones
};

void encode_replica_blob(std::uint64_t version, bool tombstone,
                         std::span<const std::uint8_t> value,
                         std::vector<std::uint8_t>& out);
/// False on malformed input (short blob, unknown flags, tombstone carrying
/// value bytes).
bool decode_replica_blob(std::span<const std::uint8_t> blob, ReplicaBlob& out);

}  // namespace chameleon::dist
