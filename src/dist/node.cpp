#include "dist/node.hpp"

#include <chrono>
#include <stdexcept>

#include "common/faults.hpp"
#include "common/fnv.hpp"
#include "svc/client_conn.hpp"
#include "svc/wire.hpp"

namespace chameleon::dist {

/// One peer as seen by the monitor thread: the (lazily resolved) spec and a
/// persistent heartbeat connection, re-established after any failure. Only
/// the monitor thread touches a PeerLink.
struct NodeRuntime::PeerLink {
  PeerSpec spec;
  std::uint16_t resolved_port = 0;
  std::unique_ptr<svc::ClientConn> conn;
};

NodeRuntime::NodeRuntime(const NodeConfig& config,
                         std::function<std::uint8_t()> state_fn)
    : config_(config),
      state_fn_(state_fn ? std::move(state_fn)
                         : [] { return std::uint8_t{1}; }),
      membership_(config.membership),
      ring_(0, std::max<std::uint32_t>(1, config.ring_vnodes)) {
  ring_.add_server(config_.node_id);
  for (const PeerSpec& peer : config_.peers) {
    if (peer.id == config_.node_id || ring_.contains(peer.id)) {
      throw std::invalid_argument("dist: node " +
                                  std::to_string(config_.node_id) +
                                  ": duplicate/self peer id " +
                                  std::to_string(peer.id));
    }
    ring_.add_server(peer.id);
    membership_.add_peer(peer);
    auto link = std::make_unique<PeerLink>();
    link->spec = peer;
    links_.push_back(std::move(link));
  }
}

NodeRuntime::~NodeRuntime() { stop(); }

void NodeRuntime::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  stop_requested_.store(false, std::memory_order_release);
  monitor_ = std::thread([this] { monitor_loop(); });
}

void NodeRuntime::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard lock(wake_mutex_);
    stop_requested_.store(true, std::memory_order_release);
  }
  wake_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  running_.store(false, std::memory_order_release);
}

std::vector<std::uint32_t> NodeRuntime::placement(
    std::uint64_t key_hash) const {
  return ring_.successors(key_hash, ring_.server_count());
}

bool NodeRuntime::place(std::span<const std::uint8_t> request,
                        std::vector<std::uint8_t>& response) {
  std::string key;
  if (!svc::decode_key_body(request, key)) return false;
  svc::PlacementBody body;
  body.view_version = membership_.view_version();
  body.nodes = placement(cluster::key_point(key));
  svc::encode_placement_body(body, response);
  return true;
}

bool NodeRuntime::peer_health(std::span<const std::uint8_t> request,
                              std::vector<std::uint8_t>& response) {
  svc::PeerHealthBody incoming;
  if (!svc::decode_peer_health_body(request, incoming)) return false;
  // A heartbeat from the sender IS evidence of its liveness; renew its
  // lease in this node's own view (unknown senders — e.g. a router probing
  // with an id outside the peer set — are simply not tracked).
  membership_.probe_ok(incoming.node_id);
  svc::PeerHealthBody reply;
  reply.node_id = config_.node_id;
  reply.state = state_fn_();
  reply.view_version = membership_.view_version();
  svc::encode_peer_health_body(reply, response);
  return true;
}

void NodeRuntime::probe_peer(PeerLink& link) {
  const auto resolved = resolve_port(link.spec);
  if (!resolved.has_value()) {
    membership_.probe_missed(link.spec.id);
    return;
  }
  // A peer restarted on a new ephemeral port invalidates the cached
  // connection; re-resolving every round keeps port-file specs current.
  if (link.conn && link.resolved_port != *resolved) link.conn.reset();
  if (!link.conn) {
    svc::ClientConfig cc;
    cc.host = link.spec.host;
    cc.port = *resolved;
    cc.default_io_timeout = config_.heartbeat_timeout;
    link.conn = std::make_unique<svc::ClientConn>(cc);
    link.resolved_port = *resolved;
  }
  svc::PeerHealthBody body;
  body.node_id = config_.node_id;
  body.state = state_fn_();
  body.view_version = membership_.view_version();
  std::vector<std::uint8_t> payload;
  svc::encode_peer_health_body(body, payload);
  try {
    const svc::Frame reply =
        link.conn->call(svc::Op::kPeerHealth, std::move(payload));
    heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
    svc::PeerHealthBody answer;
    // Liveness means "serving", not "reachable": a peer that answers while
    // recovering (state 0) or misconfigured (bad reply, no runtime
    // attached) still counts as a miss, so it only enters the live view
    // once it actually serves data ops.
    if (reply.status == svc::Status::kOk &&
        svc::decode_peer_health_body(reply.payload, answer) &&
        answer.state == 1) {
      membership_.probe_ok(link.spec.id);
    } else {
      membership_.probe_missed(link.spec.id);
    }
  } catch (const TransientFault&) {
    link.conn.reset();
    membership_.probe_missed(link.spec.id);
  } catch (const std::exception&) {
    link.conn.reset();
    membership_.probe_missed(link.spec.id);
  }
}

void NodeRuntime::monitor_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    for (auto& link : links_) {
      if (stop_requested_.load(std::memory_order_acquire)) return;
      probe_peer(*link);
    }
    std::unique_lock lock(wake_mutex_);
    wake_.wait_for(
        lock, std::chrono::nanoseconds(config_.heartbeat_interval),
        [this] { return stop_requested_.load(std::memory_order_acquire); });
  }
}

}  // namespace chameleon::dist
