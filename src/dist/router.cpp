#include "dist/router.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/faults.hpp"
#include "common/fnv.hpp"
#include "common/json.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "svc/client_conn.hpp"

namespace chameleon::dist {

namespace {

void send_all_fd(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw TransientFault(std::string("dist router: send: ") +
                         std::strerror(errno));
  }
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// Default write-version floor for a fresh router: wall-clock microseconds
/// since the Unix epoch. Replica/shard blobs on the data nodes outlive the
/// router process, so a restarted router must stamp new writes ABOVE every
/// version it handed out before, or post-restart writes silently lose the
/// newest-wins comparison. Each allocated version costs at least one
/// network RPC (≫ 1 µs of wall time), so the in-process counter can never
/// outrun this clock; the remaining assumption — documented in
/// docs/DISTRIBUTED.md — is that the clock does not step backwards across
/// restarts.
std::uint64_t wallclock_version_floor() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* route_mode_name(RouteMode mode) {
  switch (mode) {
    case RouteMode::kReplicate: return "replicate";
    case RouteMode::kStripe: return "stripe";
  }
  return "unknown";
}

RouteMode route_mode_from_name(const std::string& name) {
  if (name == "replicate") return RouteMode::kReplicate;
  if (name == "stripe") return RouteMode::kStripe;
  throw std::invalid_argument("dist: unknown route mode '" + name +
                              "' (expected replicate|stripe)");
}

/// Data-plane access to one node: the lazily (re)built client pool plus the
/// port it was built against, so a node restarting on a different ephemeral
/// port gets a fresh pool. Guarded by pools_mutex_.
struct Router::NodePool {
  PeerSpec spec;
  std::uint16_t port = 0;
  std::unique_ptr<svc::ClientPool> pool;
};

/// Heartbeat connection state per node; monitor thread only.
struct Router::ProbeLink {
  PeerSpec spec;
  std::uint16_t resolved_port = 0;
  std::unique_ptr<svc::ClientConn> conn;
};

Router::Router(const RouterConfig& config)
    : config_(config),
      membership_(config.membership),
      ring_(0, std::max<std::uint32_t>(1, config.ring_vnodes)) {
  if (config_.nodes.empty()) {
    throw std::invalid_argument("dist router: no data nodes configured");
  }
  if (config_.mode == RouteMode::kReplicate) {
    if (config_.replicas == 0) {
      throw std::invalid_argument("dist router: replicas must be >= 1");
    }
    if (config_.replicas > config_.nodes.size()) {
      throw std::invalid_argument(
          "dist router: replicas exceeds the node count — no write could "
          "ever be acked");
    }
  } else {
    if (config_.ec_k == 0 || config_.ec_m == 0 ||
        config_.ec_k + config_.ec_m > 255) {
      throw std::invalid_argument(
          "dist router: stripe geometry must satisfy k >= 1, m >= 1, "
          "k + m <= 255");
    }
    const std::uint32_t shard_count = config_.ec_k + config_.ec_m;
    const auto per_node = static_cast<std::uint32_t>(
        (shard_count + config_.nodes.size() - 1) / config_.nodes.size());
    if (per_node > config_.ec_m) {
      throw std::invalid_argument(
          "dist router: stripe geometry cannot survive one node failure "
          "even with every node live (a node would carry > m shards) — "
          "no write could ever be acked");
    }
    rs_.emplace(config_.ec_k + config_.ec_m, config_.ec_k);
  }
  next_version_.store(config_.version_seed != 0 ? config_.version_seed
                                                : wallclock_version_floor(),
                      std::memory_order_relaxed);
  for (const PeerSpec& node : config_.nodes) {
    if (ring_.contains(node.id)) {
      throw std::invalid_argument("dist router: duplicate node id " +
                                  std::to_string(node.id));
    }
    ring_.add_server(node.id);
    membership_.add_peer(node);
    auto pool = std::make_unique<NodePool>();
    pool->spec = node;
    pools_.emplace(node.id, std::move(pool));
    auto probe = std::make_unique<ProbeLink>();
    probe->spec = node;
    probes_.push_back(std::move(probe));
  }
}

Router::~Router() { stop(); }

// --- data-plane plumbing -----------------------------------------------------

svc::ClientPool* Router::pool_for(std::uint32_t id) {
  std::lock_guard lock(pools_mutex_);
  const auto it = pools_.find(id);
  if (it == pools_.end()) return nullptr;
  NodePool& np = *it->second;
  const auto resolved = resolve_port(np.spec);
  if (!resolved.has_value()) return nullptr;
  if (!np.pool || np.port != *resolved) {
    svc::ClientConfig cc;
    cc.host = np.spec.host;
    cc.port = *resolved;
    cc.retry = config_.node_retry;
    cc.max_payload = config_.max_payload;
    cc.default_io_timeout = config_.io_timeout;
    np.pool = std::make_unique<svc::ClientPool>(cc, config_.pool_size);
    np.port = *resolved;
  }
  return np.pool.get();
}

std::optional<svc::Frame> Router::node_call(std::uint32_t id, svc::Op op,
                                            std::vector<std::uint8_t> payload) {
  fanout_rpcs_total_.fetch_add(1, std::memory_order_relaxed);
  svc::ClientPool* pool = pool_for(id);
  if (pool == nullptr) {
    fanout_failures_total_.fetch_add(1, std::memory_order_relaxed);
    membership_.probe_missed(id);
    return std::nullopt;
  }
  try {
    svc::Frame response = pool->call(op, std::move(payload));
    // A served data-plane RPC is as good as a heartbeat: the node answered
    // and is serving (a recovering/draining node answers kRetryLater /
    // kShuttingDown, which the pool retries and then throws on).
    membership_.probe_ok(id);
    return response;
  } catch (const kv::RetriesExhausted&) {
  } catch (const TransientFault&) {
  }
  fanout_failures_total_.fetch_add(1, std::memory_order_relaxed);
  membership_.probe_missed(id);
  return std::nullopt;
}

std::vector<std::uint32_t> Router::live_order(std::uint64_t key_hash,
                                              bool wear_order) {
  const std::vector<ServerId> all =
      ring_.successors(key_hash, ring_.server_count());
  std::vector<std::uint32_t> live;
  live.reserve(all.size());
  for (const ServerId id : all) {
    if (membership_.is_live(id)) live.push_back(id);
  }
  if (wear_order && live.size() > 1) {
    // Cross-node wear balancing (the ARPT/HCDS lever lifted across node
    // boundaries): prefer less-worn nodes for new writes. stable_sort keeps
    // ring order among equally-worn nodes, so a cluster with no wear signal
    // routes exactly like wear_route=off.
    std::lock_guard lock(wear_mutex_);
    std::stable_sort(live.begin(), live.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       const auto ita = wear_.find(a);
                       const auto itb = wear_.find(b);
                       const std::uint64_t wa =
                           ita == wear_.end() ? 0 : ita->second.total_erases;
                       const std::uint64_t wb =
                           itb == wear_.end() ? 0 : itb->second.total_erases;
                       return wa < wb;
                     });
  }
  return live;
}

std::vector<std::uint32_t> Router::write_targets(std::string_view key) {
  std::vector<std::uint32_t> order =
      live_order(cluster::key_point(key), config_.wear_route);
  if (config_.mode == RouteMode::kReplicate &&
      order.size() > config_.replicas) {
    order.resize(config_.replicas);
  }
  return order;
}

// --- write paths -------------------------------------------------------------

svc::Status Router::replicate_put(std::string_view key, std::uint64_t version,
                                  bool tombstone,
                                  std::span<const std::uint8_t> value) {
  std::vector<std::uint8_t> blob;
  svc::encode_replica_blob(version, tombstone, value, blob);
  svc::ReplicateBody body;
  body.origin_node = config_.router_id;
  body.key = std::string(key);
  body.value = std::move(blob);
  std::vector<std::uint8_t> payload;
  svc::encode_replicate_body(body, payload);

  std::vector<std::uint32_t> targets =
      live_order(cluster::key_point(key), config_.wear_route);
  // Never ack under-replicated: with fewer than `replicas` live nodes a
  // write would land a single copy, and the one permitted node failure
  // could then make a rejoined stale copy win reads. Shed instead — the
  // client retries until the live set can hold every copy.
  if (targets.size() < config_.replicas) return svc::Status::kRetryLater;
  if (targets.size() > config_.replicas) targets.resize(config_.replicas);
  // All-or-retry: the write is acked only when EVERY targeted replica
  // stored it. A partial write is answered kRetryLater; the client's retry
  // re-runs placement against the (by then updated) membership view, which
  // is how a kill -9 mid-fan-out converges to zero acked-write loss.
  for (const std::uint32_t id : targets) {
    const auto response = node_call(id, svc::Op::kReplicate, payload);
    if (!response.has_value()) return svc::Status::kRetryLater;
    if (response->status != svc::Status::kOk) {
      return response->status == svc::Status::kBadRequest
                 ? svc::Status::kError
                 : svc::Status::kRetryLater;
    }
  }
  return svc::Status::kOk;
}

svc::Status Router::stripe_put(std::string_view key, std::uint64_t version,
                               bool tombstone,
                               std::span<const std::uint8_t> value) {
  const std::uint32_t shard_count = config_.ec_k + config_.ec_m;
  std::vector<std::vector<std::uint8_t>> shards;
  svc::ShardMeta base;
  base.k = static_cast<std::uint16_t>(config_.ec_k);
  base.m = static_cast<std::uint16_t>(config_.ec_m);
  base.version = version;
  if (tombstone) {
    base.flags = svc::kShardFlagTombstone;
    shards.assign(shard_count, {});
  } else {
    const std::vector<std::uint8_t> object(value.begin(), value.end());
    shards = rs_->encode_object(object);
    base.stripe_len = object.size();
    base.stripe_crc = svc::crc32c(value);
  }

  const std::vector<std::uint32_t> palette =
      live_order(cluster::key_point(key), config_.wear_route);
  // Never ack a stripe that one node failure would make unreconstructable:
  // round-robin over a small palette piles several shard indexes onto one
  // node, and losing a node that carries more than m shards drops the
  // stripe below k. Require every node to carry <= m shards, else shed and
  // let the client retry once the membership view recovers.
  if (palette.empty() ||
      (shard_count + palette.size() - 1) / palette.size() > config_.ec_m) {
    return svc::Status::kRetryLater;
  }
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    svc::StripeShardBody body;
    body.origin_node = config_.router_id;
    body.key = std::string(key);
    body.meta = base;
    body.meta.index = i;
    body.shard = shards[i];
    std::vector<std::uint8_t> payload;
    svc::encode_stripe_shard_body(body, payload);
    // Round-robin over the live successor order; the palette gate above
    // caps any one node at m shard indexes.
    const std::uint32_t target = palette[i % palette.size()];
    const auto response =
        node_call(target, svc::Op::kStripeWrite, std::move(payload));
    if (!response.has_value()) return svc::Status::kRetryLater;
    if (response->status != svc::Status::kOk) {
      return response->status == svc::Status::kBadRequest
                 ? svc::Status::kError
                 : svc::Status::kRetryLater;
    }
  }
  return svc::Status::kOk;
}

svc::Status Router::route_put(std::string_view key,
                              std::span<const std::uint8_t> value) {
  puts_total_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t version =
      next_version_.fetch_add(1, std::memory_order_relaxed);
  const svc::Status status =
      config_.mode == RouteMode::kReplicate
          ? replicate_put(key, version, false, value)
          : stripe_put(key, version, false, value);
  if (status == svc::Status::kRetryLater) {
    retry_later_total_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

svc::Status Router::route_delete(std::string_view key) {
  deletes_total_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t version =
      next_version_.fetch_add(1, std::memory_order_relaxed);
  // Deletes are versioned tombstone writes through the ordinary write path:
  // a node that was down for the delete rejoins with a stale value whose
  // version loses to the tombstone, so reads stay delete-correct with zero
  // anti-entropy machinery. (The blobs stay on disk; compaction is future
  // work.) Idempotent: deleting an absent key still acks kOk.
  const svc::Status status = config_.mode == RouteMode::kReplicate
                                 ? replicate_put(key, version, true, {})
                                 : stripe_put(key, version, true, {});
  if (status == svc::Status::kRetryLater) {
    retry_later_total_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

// --- read paths --------------------------------------------------------------

svc::Status Router::replicate_get(std::string_view key,
                                  std::vector<std::uint8_t>& value_out) {
  // Consult EVERY live node and keep the highest version: with at most one
  // node down at a time, the latest acked write (stored on `replicas` nodes)
  // is always present on a consulted node, and stale rejoined copies lose.
  const std::vector<std::uint32_t> candidates =
      live_order(cluster::key_point(key), false);
  std::vector<std::uint8_t> body;
  svc::encode_key_body(key, body);
  bool found = false;
  bool failures = false;
  svc::ReplicaBlob best;
  for (const std::uint32_t id : candidates) {
    const auto response = node_call(id, svc::Op::kGet, body);
    if (!response.has_value()) {
      failures = true;
      continue;
    }
    if (response->status != svc::Status::kOk) continue;  // kNotFound et al.
    svc::ReplicaBlob blob;
    if (!svc::decode_replica_blob(response->payload, blob)) {
      protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (found) {
      stale_replicas_skipped_total_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!found || blob.version > best.version) best = std::move(blob);
    found = true;
  }
  if (!found) {
    return failures || candidates.empty() ? svc::Status::kRetryLater
                                          : svc::Status::kNotFound;
  }
  if (best.tombstone) return svc::Status::kNotFound;
  value_out = std::move(best.value);
  return svc::Status::kOk;
}

svc::Status Router::stripe_get(std::string_view key,
                               std::vector<std::uint8_t>& value_out) {
  const std::uint32_t shard_count = config_.ec_k + config_.ec_m;
  const std::vector<std::uint32_t> candidates =
      live_order(cluster::key_point(key), false);
  bool failures = candidates.empty();
  // version -> (index -> shard bytes); every node is asked for every shard
  // index, because fail/rejoin cycles migrate shard placement over time.
  struct Stripe {
    std::map<std::uint32_t, std::vector<std::uint8_t>> shards;
    svc::ShardMeta meta;
    bool tombstone = false;
  };
  std::map<std::uint64_t, Stripe> by_version;
  for (const std::uint32_t id : candidates) {
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      std::vector<std::uint8_t> body;
      svc::encode_key_body(svc::shard_key(key, i), body);
      const auto response = node_call(id, svc::Op::kGet, std::move(body));
      if (!response.has_value()) {
        failures = true;
        continue;
      }
      if (response->status != svc::Status::kOk) continue;
      svc::ShardMeta meta;
      std::vector<std::uint8_t> shard;
      if (!svc::decode_shard_blob(response->payload, meta, shard) ||
          meta.k != config_.ec_k || meta.m != config_.ec_m ||
          meta.index != i) {
        protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Stripe& stripe = by_version[meta.version];
      stripe.meta = meta;
      stripe.tombstone =
          stripe.tombstone || (meta.flags & svc::kShardFlagTombstone) != 0;
      stripe.shards.emplace(i, std::move(shard));
    }
  }
  if (by_version.empty()) {
    return failures ? svc::Status::kRetryLater : svc::Status::kNotFound;
  }
  // Highest version first: tombstone wins outright; otherwise reconstruct
  // from any >= k shards and verify the stripe CRC end to end.
  for (auto it = by_version.rbegin(); it != by_version.rend(); ++it) {
    Stripe& stripe = it->second;
    if (stripe.tombstone) return svc::Status::kNotFound;
    if (stripe.shards.size() < config_.ec_k) continue;
    std::vector<std::optional<std::vector<std::uint8_t>>> slots(shard_count);
    bool parity_needed = false;
    for (auto& [index, bytes] : stripe.shards) {
      slots[index] = std::move(bytes);
    }
    for (std::uint32_t i = 0; i < config_.ec_k; ++i) {
      if (!slots[i].has_value()) parity_needed = true;
    }
    try {
      const auto data = rs_->reconstruct_data(slots);
      std::vector<std::uint8_t> object = ec::ReedSolomon::join(
          data, static_cast<std::size_t>(stripe.meta.stripe_len));
      if (svc::crc32c({object.data(), object.size()}) !=
          stripe.meta.stripe_crc) {
        protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (parity_needed) {
        reconstructions_total_.fetch_add(1, std::memory_order_relaxed);
      }
      value_out = std::move(object);
      return svc::Status::kOk;
    } catch (const std::exception&) {
      continue;  // fewer than k usable shards after all; try older version
    }
  }
  // Shards exist but no version is currently reconstructable — transient
  // (a rejoining node will bring the missing shards back).
  return svc::Status::kRetryLater;
}

svc::Status Router::route_get(std::string_view key,
                              std::vector<std::uint8_t>& value_out) {
  gets_total_.fetch_add(1, std::memory_order_relaxed);
  const svc::Status status = config_.mode == RouteMode::kReplicate
                                 ? replicate_get(key, value_out)
                                 : stripe_get(key, value_out);
  if (status == svc::Status::kRetryLater) {
    retry_later_total_.fetch_add(1, std::memory_order_relaxed);
  } else if (status == svc::Status::kNotFound) {
    not_found_total_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

std::string Router::aggregate_digest() {
  // Every node's DIGEST (itself a drain-fenced consistent snapshot), folded
  // in ascending node id order — deterministic no matter which route the
  // request took. All-or-nothing: an unreachable node throws, because a
  // partial aggregate would silently compare equal across different
  // membership states.
  std::uint64_t h = fnv1a64("chameleon.dist.digest");
  for (const std::uint32_t id : membership_.all_ids()) {
    svc::ClientPool* pool = pool_for(id);
    if (pool == nullptr) {
      throw TransientFault("dist router: node " + std::to_string(id) +
                           " unresolved for digest");
    }
    const std::string digest = pool->digest();
    h = fnv1a64_continue(h, id);
    h = fnv1a64_continue(h, fnv1a64(digest));
  }
  return hex16(h);
}

// --- wear aggregation --------------------------------------------------------

void Router::poll_wear_now() {
  wear_polls_total_.fetch_add(1, std::memory_order_relaxed);
  for (const std::uint32_t id : membership_.live_ids()) {
    const auto response = node_call(id, svc::Op::kWearReport, {});
    if (!response.has_value() || response->status != svc::Status::kOk) {
      continue;
    }
    svc::WearReportBody body;
    if (!svc::decode_wear_report_body(response->payload, body)) {
      protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    NodeWear wear;
    wear.node_id = id;
    wear.epoch = body.epoch;
    wear.total_erases = body.total_erases;
    wear.server_erases = std::move(body.server_erases);
    std::lock_guard lock(wear_mutex_);
    wear_[id] = std::move(wear);
  }
}

std::vector<NodeWear> Router::wear_view() const {
  std::lock_guard lock(wear_mutex_);
  std::vector<NodeWear> out;
  out.reserve(wear_.size());
  for (const auto& [id, wear] : wear_) out.push_back(wear);
  return out;
}

void Router::set_wear_for_test(const NodeWear& wear) {
  std::lock_guard lock(wear_mutex_);
  wear_[wear.node_id] = wear;
}

// --- liveness monitor --------------------------------------------------------

void Router::probe_node(ProbeLink& link) {
  const auto resolved = resolve_port(link.spec);
  if (!resolved.has_value()) {
    membership_.probe_missed(link.spec.id);
    return;
  }
  if (link.conn && link.resolved_port != *resolved) link.conn.reset();
  if (!link.conn) {
    svc::ClientConfig cc;
    cc.host = link.spec.host;
    cc.port = *resolved;
    cc.default_io_timeout = config_.heartbeat_timeout;
    link.conn = std::make_unique<svc::ClientConn>(cc);
    link.resolved_port = *resolved;
  }
  svc::PeerHealthBody body;
  body.node_id = config_.router_id;
  body.state = 1;
  body.view_version = membership_.view_version();
  std::vector<std::uint8_t> payload;
  svc::encode_peer_health_body(body, payload);
  try {
    const svc::Frame reply =
        link.conn->call(svc::Op::kPeerHealth, std::move(payload));
    svc::PeerHealthBody answer;
    // Liveness for the DATA plane means "serving": a node that answers
    // heartbeats while recovering still sheds data ops, so it only rejoins
    // the routing view once it reports state 1.
    if (reply.status == svc::Status::kOk &&
        svc::decode_peer_health_body(reply.payload, answer) &&
        answer.state == 1) {
      membership_.probe_ok(link.spec.id);
    } else {
      membership_.probe_missed(link.spec.id);
    }
  } catch (const std::exception&) {
    link.conn.reset();
    membership_.probe_missed(link.spec.id);
  }
}

void Router::monitor_loop() {
  auto last_wear_poll = std::chrono::steady_clock::now();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    for (auto& probe : probes_) {
      if (stop_requested_.load(std::memory_order_acquire)) return;
      probe_node(*probe);
    }
    if (config_.wear_poll_interval > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_wear_poll >=
          std::chrono::nanoseconds(config_.wear_poll_interval)) {
        last_wear_poll = now;
        poll_wear_now();
      }
    }
    std::unique_lock lock(wake_mutex_);
    wake_.wait_for(
        lock, std::chrono::nanoseconds(config_.heartbeat_interval),
        [this] { return stop_requested_.load(std::memory_order_acquire); });
  }
}

// --- front door --------------------------------------------------------------

void Router::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(false, std::memory_order_release);

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("dist router: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  const std::string host =
      config_.host == "localhost" ? "127.0.0.1" : config_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("dist router: cannot parse host '" +
                             config_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 128) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("dist router: bind/listen: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  start_time_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  monitor_ = std::thread([this] { monitor_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Router::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard lock(wake_mutex_);
    stop_requested_.store(true, std::memory_order_release);
  }
  wake_.notify_all();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard lock(sessions_mutex_);
    for (const auto& [id, fd] : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (monitor_.joinable()) monitor_.join();
  // Move the session threads out of the table before joining them: a
  // draining session's last act is to take sessions_mutex_ and unregister
  // itself, so joining under the lock deadlocks with any session that was
  // still alive when stop() began.
  std::vector<std::thread> draining;
  {
    std::lock_guard lock(sessions_mutex_);
    draining.reserve(session_threads_.size());
    for (auto& [id, thread] : session_threads_) {
      draining.push_back(std::move(thread));
    }
    session_threads_.clear();
    finished_sessions_.clear();
  }
  for (std::thread& thread : draining) {
    if (thread.joinable()) thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void Router::accept_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    {
      // Reap finished session threads so a long-lived router's thread table
      // stays bounded by the concurrent session count, not the total.
      std::lock_guard lock(sessions_mutex_);
      for (const std::uint64_t id : finished_sessions_) {
        const auto it = session_threads_.find(id);
        if (it != session_threads_.end()) {
          it->second.join();
          session_threads_.erase(it);
        }
      }
      finished_sessions_.clear();
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (stop) or fatal
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(sessions_mutex_);
    if (session_fds_.size() >= config_.max_sessions) {
      ::close(fd);
      continue;
    }
    const std::uint64_t id = next_session_id_++;
    session_fds_.emplace(id, fd);
    sessions_total_.fetch_add(1, std::memory_order_relaxed);
    sessions_open_.fetch_add(1, std::memory_order_relaxed);
    session_threads_.emplace(
        id, std::thread([this, fd, id] { session_loop(fd, id); }));
  }
}

void Router::session_loop(int fd, std::uint64_t session_id) {
  svc::FrameDecoder decoder(config_.max_payload);
  std::vector<std::uint8_t> out;
  svc::Frame frame;
  bool open = true;
  while (open && !stop_requested_.load(std::memory_order_acquire)) {
    std::uint8_t chunk[16 * 1024];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    decoder.feed({chunk, static_cast<std::size_t>(n)});
    for (;;) {
      const svc::DecodeResult d = decoder.next(frame);
      if (d == svc::DecodeResult::kNeedMore) break;
      if (d != svc::DecodeResult::kFrame) {
        protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
        open = false;
        break;
      }
      const svc::Frame response = dispatch(frame);
      out.clear();
      svc::encode_frame(response, out);
      try {
        send_all_fd(fd, out.data(), out.size());
      } catch (const TransientFault&) {
        open = false;
        break;
      }
    }
  }
  // Unregister BEFORE closing: stop() walks session_fds_ calling shutdown,
  // and once this fd is closed the kernel may hand the same number to a new
  // descriptor — shutdown would then hit an unrelated socket.
  {
    std::lock_guard lock(sessions_mutex_);
    session_fds_.erase(session_id);
  }
  ::close(fd);
  sessions_open_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard lock(sessions_mutex_);
  finished_sessions_.push_back(session_id);
}

svc::Frame Router::dispatch(const svc::Frame& request) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  svc::Frame resp{request.op, svc::Status::kOk, request.request_id, {}};
  try {
    switch (request.op) {
      case svc::Op::kPing:
        break;
      case svc::Op::kGet: {
        std::string key;
        if (!svc::decode_key_body(request.payload, key)) {
          resp.status = svc::Status::kBadRequest;
          break;
        }
        resp.status = route_get(key, resp.payload);
        break;
      }
      case svc::Op::kPut: {
        svc::PutBody body;
        if (!svc::decode_put_body(request.payload, body)) {
          resp.status = svc::Status::kBadRequest;
          break;
        }
        resp.status = route_put(
            body.key, std::span<const std::uint8_t>(body.value.data(),
                                                    body.value.size()));
        break;
      }
      case svc::Op::kDelete: {
        std::string key;
        if (!svc::decode_key_body(request.payload, key)) {
          resp.status = svc::Status::kBadRequest;
          break;
        }
        resp.status = route_delete(key);
        break;
      }
      case svc::Op::kStats: {
        const std::string body = stats_json();
        resp.payload.assign(body.begin(), body.end());
        break;
      }
      case svc::Op::kMetrics: {
        const std::string body = obs::render_prometheus(obs::metrics());
        resp.payload.assign(body.begin(), body.end());
        break;
      }
      case svc::Op::kDigest: {
        const std::string digest = aggregate_digest();
        resp.payload.assign(digest.begin(), digest.end());
        break;
      }
      case svc::Op::kHealth: {
        const std::string body = health_json();
        resp.payload.assign(body.begin(), body.end());
        break;
      }
      case svc::Op::kPlace: {
        std::string key;
        if (!svc::decode_key_body(request.payload, key)) {
          resp.status = svc::Status::kBadRequest;
          break;
        }
        svc::PlacementBody body;
        body.view_version = membership_.view_version();
        body.nodes = ring_.successors(cluster::key_point(key), ring_.server_count());
        svc::encode_placement_body(body, resp.payload);
        break;
      }
      default:
        resp.status = svc::Status::kBadRequest;
        break;
    }
  } catch (const TransientFault& fault) {
    resp.status = svc::Status::kRetryLater;
    const std::string what = fault.what();
    resp.payload.assign(what.begin(), what.end());
    retry_later_total_.fetch_add(1, std::memory_order_relaxed);
  } catch (const kv::RetriesExhausted& error) {
    resp.status = svc::Status::kRetryLater;
    const std::string what = error.what();
    resp.payload.assign(what.begin(), what.end());
    retry_later_total_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& error) {
    resp.status = svc::Status::kError;
    const std::string what = error.what();
    resp.payload.assign(what.begin(), what.end());
  }
  return resp;
}

// --- reporting ---------------------------------------------------------------

bool Router::serving() const {
  return running_.load(std::memory_order_acquire) && membership_.settled() &&
         !membership_.live_ids().empty();
}

RouterStats Router::stats() const {
  RouterStats s;
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.puts_total = puts_total_.load(std::memory_order_relaxed);
  s.gets_total = gets_total_.load(std::memory_order_relaxed);
  s.deletes_total = deletes_total_.load(std::memory_order_relaxed);
  s.fanout_rpcs_total = fanout_rpcs_total_.load(std::memory_order_relaxed);
  s.fanout_failures_total =
      fanout_failures_total_.load(std::memory_order_relaxed);
  s.retry_later_total = retry_later_total_.load(std::memory_order_relaxed);
  s.not_found_total = not_found_total_.load(std::memory_order_relaxed);
  s.stale_replicas_skipped_total =
      stale_replicas_skipped_total_.load(std::memory_order_relaxed);
  s.reconstructions_total =
      reconstructions_total_.load(std::memory_order_relaxed);
  s.wear_polls_total = wear_polls_total_.load(std::memory_order_relaxed);
  s.sessions_open = sessions_open_.load(std::memory_order_relaxed);
  s.sessions_total = sessions_total_.load(std::memory_order_relaxed);
  s.protocol_errors_total =
      protocol_errors_total_.load(std::memory_order_relaxed);
  return s;
}

std::string Router::stats_json() const {
  const RouterStats s = stats();
  std::string out = "{\"role\":\"router\",\"mode\":\"";
  out += route_mode_name(config_.mode);
  out += '"';
  const auto field = [&out](const char* key, std::uint64_t v) {
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(v);
  };
  field("nodes", membership_.size());
  field("live", membership_.live_ids().size());
  field("replicas", config_.replicas);
  field("ec_k", config_.ec_k);
  field("ec_m", config_.ec_m);
  field("requests_total", s.requests_total);
  field("puts_total", s.puts_total);
  field("gets_total", s.gets_total);
  field("deletes_total", s.deletes_total);
  field("fanout_rpcs_total", s.fanout_rpcs_total);
  field("fanout_failures_total", s.fanout_failures_total);
  field("retry_later_total", s.retry_later_total);
  field("not_found_total", s.not_found_total);
  field("stale_replicas_skipped_total", s.stale_replicas_skipped_total);
  field("reconstructions_total", s.reconstructions_total);
  field("wear_polls_total", s.wear_polls_total);
  field("sessions_open", s.sessions_open);
  field("sessions_total", s.sessions_total);
  field("protocol_errors_total", s.protocol_errors_total);
  field("membership_transitions_total", membership_.transitions_total());
  field("membership_rejoins_total", membership_.rejoins_total());
  field("view_version", membership_.view_version());
  field("next_version", next_version_.load(std::memory_order_relaxed));
  out += ",\"wear_route\":";
  out += config_.wear_route ? "true" : "false";
  out += ",\"membership\":" + membership_.to_json();
  out += ",\"wear\":[";
  bool first = true;
  for (const NodeWear& wear : wear_view()) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(wear.node_id);
    out += ",\"epoch\":" + std::to_string(wear.epoch);
    out += ",\"total_erases\":" + std::to_string(wear.total_erases);
    out += ",\"servers\":" + std::to_string(wear.server_erases.size());
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Router::health_json() const {
  const bool is_serving = serving();
  const std::size_t live = membership_.live_ids().size();
  std::string out = "{\"role\":\"router\",\"state\":\"";
  out += !membership_.settled() ? "starting"
         : live == membership_.size() ? "serving"
                                      : "degraded";
  out += "\",\"serving\":";
  out += is_serving ? "true" : "false";
  out += ",\"settled\":";
  out += membership_.settled() ? "true" : "false";
  out += ",\"live\":" + std::to_string(live);
  out += ",\"nodes\":" + std::to_string(membership_.size());
  out += ",\"uptime_seconds\":";
  const double uptime =
      start_time_.time_since_epoch().count() == 0
          ? 0.0
          : static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_time_)
                    .count()) /
                1e9;
  out += json_number(uptime);
  out += ",\"membership\":" + membership_.to_json();
  out += '}';
  return out;
}

}  // namespace chameleon::dist
