#include "dist/peer.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace chameleon::dist {

PeerSpec parse_peer_spec(const std::string& text) {
  const auto at = text.find('@');
  if (at == std::string::npos || at == 0) {
    throw std::invalid_argument("dist: peer spec '" + text +
                                "' (expected id@host:port or id@host:@file)");
  }
  PeerSpec spec;
  try {
    std::size_t consumed = 0;
    const unsigned long id = std::stoul(text.substr(0, at), &consumed);
    if (consumed != at || id > 0xffffffffUL) throw std::invalid_argument("");
    spec.id = static_cast<std::uint32_t>(id);
  } catch (const std::exception&) {
    throw std::invalid_argument("dist: peer spec '" + text +
                                "': bad node id");
  }
  const std::string rest = text.substr(at + 1);
  const auto colon = rest.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
    throw std::invalid_argument("dist: peer spec '" + text +
                                "': expected host:port");
  }
  spec.host = rest.substr(0, colon);
  const std::string port_part = rest.substr(colon + 1);
  if (port_part[0] == '@') {
    spec.port_file = port_part.substr(1);
    if (spec.port_file.empty()) {
      throw std::invalid_argument("dist: peer spec '" + text +
                                  "': empty port file path");
    }
  } else {
    try {
      std::size_t consumed = 0;
      const unsigned long port = std::stoul(port_part, &consumed);
      if (consumed != port_part.size() || port == 0 || port > 65535) {
        throw std::invalid_argument("");
      }
      spec.port = static_cast<std::uint16_t>(port);
    } catch (const std::exception&) {
      throw std::invalid_argument("dist: peer spec '" + text +
                                  "': bad port");
    }
  }
  return spec;
}

std::vector<PeerSpec> parse_peer_list(const std::string& text) {
  std::vector<PeerSpec> specs;
  std::set<std::uint32_t> seen;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    PeerSpec spec = parse_peer_spec(item);
    if (!seen.insert(spec.id).second) {
      throw std::invalid_argument("dist: duplicate peer id " +
                                  std::to_string(spec.id) + " in '" + text +
                                  "'");
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    throw std::invalid_argument("dist: empty peer list '" + text + "'");
  }
  return specs;
}

std::optional<std::uint16_t> resolve_port(const PeerSpec& spec) {
  if (spec.port != 0) return spec.port;
  std::ifstream in(spec.port_file);
  if (!in) return std::nullopt;
  unsigned long port = 0;
  in >> port;
  if (!in || port == 0 || port > 65535) return std::nullopt;
  return static_cast<std::uint16_t>(port);
}

std::string format_peer_spec(const PeerSpec& spec) {
  std::string out = std::to_string(spec.id) + "@" + spec.host + ":";
  if (spec.port != 0) {
    out += std::to_string(spec.port);
  } else {
    out += "@" + spec.port_file;
  }
  return out;
}

}  // namespace chameleon::dist
