// SWANS (Wang, Xie & Sharma, ACM TOS'16): inter-disk wear leveling for SSD
// arrays that "dynamically monitors the variance of write intensity and
// redistributes writes based only on the number of writes that an SSD has
// received". Unlike EDM it reacts to *write intensity* (pages written per
// epoch), not accumulated erase counts, and like EDM it is redundancy-
// oblivious and migrates data in bulk. Included for related-work breadth;
// the paper's evaluation compares against EDM only.
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidate_index.hpp"
#include "core/flash_monitor.hpp"
#include "kv/kv_store.hpp"

namespace chameleon::baselines {

struct SwansOptions {
  /// Trigger on the coefficient of variation of per-epoch write intensity.
  double intensity_cv = 0.20;
  /// Activity floor: below this mean pages/server/epoch the cluster is
  /// considered idle (prevents chasing the noise of its own migrations).
  double min_mean_pages = 64.0;
  std::size_t max_migrations = 20'000;
  double migration_fraction = 0.01;
  double space_guard_utilization = 0.90;
};

struct SwansEpochReport {
  Epoch epoch = 0;
  bool triggered = false;
  std::size_t migrations = 0;
  double intensity_cv_before = 0.0;
};

class SwansBalancer {
 public:
  SwansBalancer(kv::KvStore& store, const SwansOptions& opts);

  void on_epoch(Epoch now);

  const std::vector<SwansEpochReport>& timeline() const { return timeline_; }

 private:
  kv::KvStore& store_;
  SwansOptions opts_;
  core::FlashMonitor monitor_;
  std::vector<SwansEpochReport> timeline_;
};

}  // namespace chameleon::baselines
