#include "baselines/hybrid_rep_ec.hpp"

namespace chameleon::baselines {

void HybridRepEcPolicy::on_epoch(Epoch now) {
  HybridEpochReport report;
  report.epoch = now;

  store_.table().for_each_mutable(
      [now](meta::ObjectMeta& m) { m.fold_heat(now); });

  // Collect first (acting inside for_each would re-enter the table locks).
  std::vector<ObjectId> to_convert;
  store_.table().for_each([&](const meta::ObjectMeta& m) {
    if (m.state != meta::RedState::kRep) return;
    if (now < m.state_since + opts_.min_age_epochs) return;
    if (m.heat(now) >= opts_.cold_threshold) return;
    to_convert.push_back(m.oid);
  });

  for (const ObjectId oid : to_convert) {
    if (report.conversions >= opts_.max_conversions_per_epoch) break;
    const auto live = store_.table().get(oid);
    if (!live || live->state != meta::RedState::kRep) continue;
    const auto dst = store_.place(oid, meta::RedState::kEc);
    store_.convert(oid, meta::RedState::kEc, dst,
                   cluster::Traffic::kConversion);
    ++report.conversions;
  }

  timeline_.push_back(report);
}

}  // namespace chameleon::baselines
