// EDM (Ou et al., IPDPS'14): the state-of-the-art migration-based wear
// balancer the paper compares against. When the erase-count deviation
// crosses a threshold it *bulk-migrates* hot data from the most-worn server
// to the least-worn server — reads at the source, network transfer, and
// programs at the destination. Those extra programs are precisely the
// overhead Chameleon's write offloading avoids (Fig 5b shows EDM up to
// ~+20% total erasures). EDM is redundancy-oblivious: it runs under a
// single scheme (REP or EC) and never converts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidate_index.hpp"
#include "core/flash_monitor.hpp"
#include "core/wear_estimator.hpp"
#include "kv/kv_store.hpp"

namespace chameleon::baselines {

struct EdmOptions {
  /// Trigger/stop threshold on the erase-count deviation, as a coefficient
  /// of variation (or absolute if _abs is nonzero) — kept identical to
  /// Chameleon's ARPT trigger for a fair comparison.
  double sigma_cv = 0.10;
  double sigma_abs = 0.0;
  std::size_t max_migrations = 20'000;  ///< absolute per-epoch ceiling
  /// Per-epoch cap as a fraction of objects (floor 16): EDM re-balances
  /// progressively, it does not churn the whole cluster per epoch.
  double migration_fraction = 0.01;
  /// Never migrate onto a server whose logical utilization exceeds this.
  double space_guard_utilization = 0.90;
};

struct EdmEpochReport {
  Epoch epoch = 0;
  bool triggered = false;
  std::size_t migrations = 0;
  std::uint64_t bytes_moved = 0;
  double sigma_before = 0.0;
  double sigma_after_est = 0.0;
};

class EdmBalancer {
 public:
  EdmBalancer(kv::KvStore& store, const EdmOptions& opts);

  /// Epoch-boundary hook (same cadence as Chameleon's balancer).
  void on_epoch(Epoch now);

  const std::vector<EdmEpochReport>& timeline() const { return timeline_; }

 private:
  kv::KvStore& store_;
  EdmOptions opts_;
  core::FlashMonitor monitor_;
  core::WearEstimator estimator_;
  std::vector<EdmEpochReport> timeline_;
};

}  // namespace chameleon::baselines
