// REP+EC-baseline (Table IV): the HDFS-RAID-style hybrid scheme — all newly
// created data is replicated, and data that has cooled down is *eagerly*
// converted from REP to EC (gather, re-encode, distribute). No wear
// awareness anywhere: conversions target the default ring placement and
// never move back to REP.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/kv_store.hpp"

namespace chameleon::baselines {

struct HybridOptions {
  /// Heat (Eq 1 units) below which a replicated object is encoded.
  double cold_threshold = 2.0;
  /// An object must be at least this many epochs old before conversion
  /// ("recently created data stays replicated").
  Epoch min_age_epochs = 2;
  std::size_t max_conversions_per_epoch = 10'000;
};

struct HybridEpochReport {
  Epoch epoch = 0;
  std::size_t conversions = 0;
};

class HybridRepEcPolicy {
 public:
  HybridRepEcPolicy(kv::KvStore& store, const HybridOptions& opts)
      : store_(store), opts_(opts) {}

  void on_epoch(Epoch now);

  const std::vector<HybridEpochReport>& timeline() const { return timeline_; }

 private:
  kv::KvStore& store_;
  HybridOptions opts_;
  std::vector<HybridEpochReport> timeline_;
};

}  // namespace chameleon::baselines
