#include "baselines/edm.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "core/options.hpp"

namespace chameleon::baselines {

namespace {

double stddev_of(const std::vector<double>& v) {
  RunningStats s;
  for (const double x : v) s.add(x);
  return s.stddev();
}

double mean_of(const std::vector<double>& v) {
  RunningStats s;
  for (const double x : v) s.add(x);
  return s.mean();
}

ServerId argmax(const std::vector<double>& v) {
  ServerId best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = static_cast<ServerId>(i);
  }
  return best;
}

ServerId argmin(const std::vector<double>& v) {
  ServerId best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[best]) best = static_cast<ServerId>(i);
  }
  return best;
}

}  // namespace

EdmBalancer::EdmBalancer(kv::KvStore& store, const EdmOptions& opts)
    : store_(store),
      opts_(opts),
      monitor_(store.cluster()),
      estimator_(store.cluster().ssd_config().pages_per_block,
                 store.cluster().ssd_config().page_size_bytes) {}

void EdmBalancer::on_epoch(Epoch now) {
  EdmEpochReport report;
  report.epoch = now;

  const auto wear = monitor_.collect(now);
  estimator_.update(wear);

  // Keep heat folding on the same cadence as Chameleon.
  store_.table().for_each_mutable(
      [now](meta::ObjectMeta& m) { m.fold_heat(now); });

  std::vector<double> est(wear.size(), 0.0);
  for (const auto& info : wear) {
    est[info.server] = static_cast<double>(info.erase_count);
  }
  report.sigma_before = stddev_of(est);
  const double mean = mean_of(est);
  const double target =
      opts_.sigma_abs > 0.0 ? opts_.sigma_abs : opts_.sigma_cv * mean;

  if (mean > 0.0 && report.sigma_before > target) {
    report.triggered = true;
    // EDM/SWANS-style selection: ranked by lifetime write count, not decayed
    // heat — blind to hot-set drift, which is what Chameleon's Eq 1 fixes.
    core::CandidateIndex index(store_.table(), store_.cluster().size(), now,
                               core::HeatKind::kCumulative);
    double sigma = report.sigma_before;
    const std::uint64_t migration_bytes_before =
        store_.cluster().network().bytes(cluster::Traffic::kMigration);
    const std::size_t cap = core::ChameleonOptions::effective_cap(
        opts_.max_migrations, opts_.migration_fraction,
        store_.table().object_count());

    while (sigma > target && report.migrations < cap) {
      const ServerId x = argmax(est);
      const ServerId y = argmin(est);
      if (x == y) break;
      // Space guard: migration piles data onto the least-worn server; stop
      // before overfilling it.
      if (store_.cluster().server(y).logical_utilization() >
          opts_.space_guard_utilization) {
        break;
      }
      const core::Candidate* c = index.take_hottest(x, y, store_.table());
      if (c == nullptr) break;

      const auto live = store_.table().get(c->oid);
      if (!live || !live->src.contains(x) || live->src.contains(y)) continue;
      meta::ServerSet dst;
      for (const ServerId s : live->src) dst.push_back(s == x ? y : s);

      // The defining EDM move: bulk data migration, paid in device writes.
      store_.relocate(c->oid, dst, cluster::Traffic::kMigration);
      ++report.migrations;

      // EDM projects wear from raw write counts (average writes/epoch),
      // without Eq 2's victim-utilization model or heat decay.
      const double naive_rate =
          c->heat / std::max(1.0, static_cast<double>(now));
      const double pages =
          std::max(1.0, static_cast<double>(store_.fragment_bytes(
                            c->size_bytes, meta::current_scheme(c->state))) /
                            static_cast<double>(
                                store_.cluster().ssd_config().page_size_bytes));
      const double naive_cost =
          naive_rate * pages /
          static_cast<double>(
              store_.cluster().ssd_config().pages_per_block);
      est[x] -= naive_cost;
      est[y] += naive_cost;
      sigma = stddev_of(est);
    }
    report.sigma_after_est = sigma;
    report.bytes_moved =
        store_.cluster().network().bytes(cluster::Traffic::kMigration) -
        migration_bytes_before;
  }

  timeline_.push_back(report);
}

}  // namespace chameleon::baselines
