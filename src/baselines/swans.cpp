#include "baselines/swans.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "core/options.hpp"

namespace chameleon::baselines {

SwansBalancer::SwansBalancer(kv::KvStore& store, const SwansOptions& opts)
    : store_(store), opts_(opts), monitor_(store.cluster()) {}

void SwansBalancer::on_epoch(Epoch now) {
  SwansEpochReport report;
  report.epoch = now;

  const auto wear = monitor_.collect(now);
  store_.table().for_each_mutable(
      [now](meta::ObjectMeta& m) { m.fold_heat(now); });

  // Per-epoch write intensity per server (what SWANS monitors).
  std::vector<double> intensity(wear.size(), 0.0);
  RunningStats stats;
  for (const auto& info : wear) {
    intensity[info.server] = static_cast<double>(info.host_pages_this_epoch);
    stats.add(intensity[info.server]);
  }
  report.intensity_cv_before = stats.cv();

  if (stats.mean() >= opts_.min_mean_pages &&
      stats.cv() > opts_.intensity_cv) {
    report.triggered = true;
    core::CandidateIndex index(store_.table(), store_.cluster().size(), now,
                               core::HeatKind::kCumulative);
    const std::size_t cap = core::ChameleonOptions::effective_cap(
        opts_.max_migrations, opts_.migration_fraction,
        store_.table().object_count());

    while (report.migrations < cap) {
      // Most- and least-written servers this epoch.
      ServerId x = 0;
      ServerId y = 0;
      for (std::size_t i = 1; i < intensity.size(); ++i) {
        if (intensity[i] > intensity[x]) x = static_cast<ServerId>(i);
        if (intensity[i] < intensity[y]) y = static_cast<ServerId>(i);
      }
      if (x == y || intensity[x] <= intensity[y]) break;
      if (store_.cluster().server(y).logical_utilization() >
          opts_.space_guard_utilization) {
        break;
      }
      const core::Candidate* c = index.take_hottest(x, y, store_.table());
      if (c == nullptr) break;
      const auto live = store_.table().get(c->oid);
      if (!live || !live->src.contains(x) || live->src.contains(y)) continue;

      meta::ServerSet dst;
      for (const ServerId s : live->src) dst.push_back(s == x ? y : s);
      store_.relocate(c->oid, dst, cluster::Traffic::kMigration);
      ++report.migrations;

      // Shift the redistributed write share in the intensity projection.
      const double share =
          c->heat / std::max(1.0, static_cast<double>(now));
      intensity[x] -= share;
      intensity[y] += share;
    }
  }

  timeline_.push_back(report);
}

}  // namespace chameleon::baselines
