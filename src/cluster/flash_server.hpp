// One storage node: a simulated SSD behind a local object log. The unit
// stored here is a *fragment* — a full replica or a single EC shard of an
// object — identified by a key that encodes (object, placement version,
// shard index) so that old and new incarnations of the same object can
// coexist on one server mid-transition.
#pragma once

#include <cstdint>
#include <memory>

#include "common/fnv.hpp"
#include "common/types.hpp"
#include "flashsim/local_log.hpp"

namespace chameleon::cluster {

/// Key of a stored fragment. Mixes object id, placement version and shard
/// index through FNV-1a; 64 bits make collisions negligible at our scales.
using FragmentKey = std::uint64_t;

inline FragmentKey fragment_key(ObjectId oid, std::uint32_t placement_version,
                                std::uint32_t shard_index) {
  // One FNV-1a stream over the whole tuple plus a finalizer: XOR-combining
  // two independent hashes is collision-prone for structured inputs.
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(placement_version) << 32) | shard_index;
  return mix64(fnv1a64_continue(fnv1a64(oid), packed));
}

class FlashServer {
 public:
  FlashServer(ServerId id, const flashsim::SsdConfig& config)
      : id_(id), log_(config) {}

  FlashServer(const FlashServer&) = delete;
  FlashServer& operator=(const FlashServer&) = delete;

  ServerId id() const { return id_; }

  /// Store (or overwrite) a fragment of `bytes`; returns device latency.
  /// `hint` routes the pages to the device's hot/cold write stream.
  Nanos write_fragment(
      FragmentKey key, std::uint64_t bytes,
      flashsim::StreamHint hint = flashsim::StreamHint::kDefault) {
    return log_.write_object(key, bytes, hint).latency + stall_penalty_;
  }

  Nanos read_fragment(FragmentKey key) {
    return log_.read_object(key).latency + stall_penalty_;
  }

  /// Invalidate a fragment (trim; no flash writes). Returns pages released.
  std::uint32_t remove_fragment(FragmentKey key) {
    return log_.remove_object(key);
  }

  bool has_fragment(FragmentKey key) const { return log_.has_object(key); }

  /// Drop every fragment (device replacement after a failure). Wear history
  /// stays with the physical blocks.
  std::size_t wipe_data() { return log_.remove_all_objects(); }

  const flashsim::SsdStats& ssd_stats() const { return log_.stats(); }
  std::uint64_t total_erases() const { return log_.ftl().total_erases(); }
  double write_amplification() const {
    return log_.stats().write_amplification();
  }
  double avg_victim_utilization() const {
    return log_.stats().avg_victim_utilization();
  }
  double logical_utilization() const { return log_.logical_utilization(); }
  std::size_t fragment_count() const { return log_.object_count(); }

  const flashsim::LocalLog& log() const { return log_; }
  flashsim::LocalLog& log() { return log_; }

  /// Fault injection: model a transiently slow node (degraded NIC, firmware
  /// hiccup) by inflating every fragment read/write by `penalty`. 0 clears.
  void set_stall_penalty(Nanos penalty) { stall_penalty_ = penalty; }
  Nanos stall_penalty() const { return stall_penalty_; }

 private:
  ServerId id_;
  flashsim::LocalLog log_;
  Nanos stall_penalty_ = 0;
};

}  // namespace chameleon::cluster
