// One storage node: a simulated SSD behind a local object log. The unit
// stored here is a *fragment* — a full replica or a single EC shard of an
// object — identified by a key that encodes (object, placement version,
// shard index) so that old and new incarnations of the same object can
// coexist on one server mid-transition.
#pragma once

#include <cstdint>
#include <memory>

#include <utility>

#include "cluster/device_exec.hpp"
#include "common/fnv.hpp"
#include "common/types.hpp"
#include "flashsim/local_log.hpp"

namespace chameleon::cluster {

/// Key of a stored fragment. Mixes object id, placement version and shard
/// index through FNV-1a; 64 bits make collisions negligible at our scales.
using FragmentKey = std::uint64_t;

inline FragmentKey fragment_key(ObjectId oid, std::uint32_t placement_version,
                                std::uint32_t shard_index) {
  // One FNV-1a stream over the whole tuple plus a finalizer: XOR-combining
  // two independent hashes is collision-prone for structured inputs.
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(placement_version) << 32) | shard_index;
  return mix64(fnv1a64_continue(fnv1a64(oid), packed));
}

class FlashServer {
 public:
  FlashServer(ServerId id, const flashsim::SsdConfig& config)
      : id_(id), log_(config) {}

  FlashServer(const FlashServer&) = delete;
  FlashServer& operator=(const FlashServer&) = delete;

  ServerId id() const { return id_; }

  /// Store (or overwrite) a fragment of `bytes`; returns device latency.
  /// `hint` routes the pages to the device's hot/cold write stream.
  /// With a deferrable executor attached the physical work is scheduled on
  /// the server's shard (latency joins the open fan-out group) and 0 is
  /// returned; logical state is up to date either way.
  Nanos write_fragment(
      FragmentKey key, std::uint64_t bytes,
      flashsim::StreamHint hint = flashsim::StreamHint::kDefault) {
    if (exec_ != nullptr && exec_->deferrable(*this)) {
      const Nanos stall = stall_penalty_;  // by value: penalties only change
                                           // at drain fences
      exec_->defer(
          *this,
          [this, plan = log_.plan_write(key, bytes), hint, stall] {
            return log_.execute_write(plan, hint) + stall;
          },
          /*latency_counts=*/true);
      return 0;
    }
    return log_.write_object(key, bytes, hint).latency + stall_penalty_;
  }

  Nanos read_fragment(FragmentKey key) {
    if (exec_ != nullptr && exec_->deferrable(*this)) {
      const Nanos stall = stall_penalty_;
      exec_->defer(
          *this,
          [this, plan = log_.plan_read(key), stall] {
            return log_.execute_read(plan) + stall;
          },
          /*latency_counts=*/true);
      return 0;
    }
    return log_.read_object(key).latency + stall_penalty_;
  }

  /// Invalidate a fragment (trim; no flash writes). Returns pages released.
  std::uint32_t remove_fragment(FragmentKey key) {
    if (exec_ != nullptr && exec_->deferrable(*this)) {
      auto plan = log_.plan_remove(key);
      const std::uint32_t pages = plan.pages;
      exec_->defer(
          *this,
          [this, plan = std::move(plan)] {
            log_.execute_trims(plan);
            return Nanos{0};
          },
          /*latency_counts=*/false);
      return pages;
    }
    return log_.remove_object(key);
  }

  bool has_fragment(FragmentKey key) const { return log_.has_object(key); }

  /// Drop every fragment (device replacement after a failure). Wear history
  /// stays with the physical blocks.
  std::size_t wipe_data() {
    if (exec_ != nullptr && exec_->deferrable(*this)) {
      auto plan = log_.plan_remove_all();
      const std::size_t objects = plan.objects;
      exec_->defer(
          *this,
          [this, plan = std::move(plan)] {
            log_.execute_trims(plan);
            return Nanos{0};
          },
          /*latency_counts=*/false);
      return objects;
    }
    return log_.remove_all_objects();
  }

  /// Attach (or detach with nullptr) the device executor; normally done for
  /// the whole cluster via Cluster::attach_executor.
  void attach_executor(DeviceExecutor* exec) { exec_ = exec; }
  DeviceExecutor* executor() const { return exec_; }

  const flashsim::SsdStats& ssd_stats() const { return log_.stats(); }
  std::uint64_t total_erases() const { return log_.ftl().total_erases(); }
  double write_amplification() const {
    return log_.stats().write_amplification();
  }
  double avg_victim_utilization() const {
    return log_.stats().avg_victim_utilization();
  }
  double logical_utilization() const { return log_.logical_utilization(); }
  std::size_t fragment_count() const { return log_.object_count(); }

  const flashsim::LocalLog& log() const { return log_; }
  flashsim::LocalLog& log() { return log_; }

  /// Fault injection: model a transiently slow node (degraded NIC, firmware
  /// hiccup) by inflating every fragment read/write by `penalty`. 0 clears.
  void set_stall_penalty(Nanos penalty) { stall_penalty_ = penalty; }
  Nanos stall_penalty() const { return stall_penalty_; }

 private:
  ServerId id_;
  flashsim::LocalLog log_;
  Nanos stall_penalty_ = 0;
  DeviceExecutor* exec_ = nullptr;  ///< not owned; nullptr = sequential
};

}  // namespace chameleon::cluster
