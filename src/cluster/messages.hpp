// Typed wire messages between the flash monitors and the wear balancer —
// our stand-in for the paper's Google Protocol Buffers integration. Each
// message serializes to a compact length-delimited byte string; the network
// model accounts the real serialized sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace chameleon::cluster {

/// Monitor -> coordinator: one server's device statistics (paper §III-A).
struct HeartbeatMessage {
  ServerId server = 0;
  Epoch epoch = 0;
  std::uint64_t erase_count = 0;
  std::uint64_t host_pages_this_epoch = 0;
  /// Fixed-point fields (x 10^-4): utilizations in [0, 1].
  std::uint32_t logical_utilization_q = 0;
  std::uint32_t victim_utilization_q = 0;

  std::string serialize() const;
  static HeartbeatMessage deserialize(const std::string& bytes);

  bool operator==(const HeartbeatMessage&) const = default;
};

/// Coordinator -> mapping table / servers: re-target one object (the
/// metadata update ARPT and HCDS emit for each decision).
struct RemapCommand {
  ObjectId oid = 0;
  Epoch epoch = 0;
  std::uint8_t new_state = 0;  ///< meta::RedState as a wire byte
  std::vector<ServerId> destination;

  std::string serialize() const;
  static RemapCommand deserialize(const std::string& bytes);

  bool operator==(const RemapCommand&) const = default;
};

namespace wire {

/// Varint primitives (protobuf-style LEB128) used by the messages above.
void put_varint(std::string& out, std::uint64_t value);
std::uint64_t get_varint(const std::string& in, std::size_t& pos);

}  // namespace wire
}  // namespace chameleon::cluster
