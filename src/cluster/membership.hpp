// Lease-based cluster membership — the coordination layer the paper gets
// from ZooKeeper. Every flash server renews a lease with its heartbeat;
// a server whose lease lapses is declared dead, and the lowest-id live
// server is the coordinator that runs the wear balancer (paper §IV-A:
// "One flash server is chosen as a coordinator").
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/types.hpp"

namespace chameleon::cluster {

class MembershipService {
 public:
  /// All `server_count` servers join live, with leases expiring
  /// `lease_length` after their last heartbeat.
  MembershipService(std::uint32_t server_count, Nanos lease_length);

  /// A heartbeat from `server` at time `now` renews its lease. Heartbeats
  /// from declared-dead servers are ignored until rejoin().
  void heartbeat(ServerId server, Nanos now);

  /// Evaluate leases at `now`; newly expired servers are declared dead and
  /// returned (each server is reported dead exactly once).
  std::vector<ServerId> detect_failures(Nanos now);

  /// Immediately declare a server dead (e.g. its device reported end of
  /// life) without waiting for its lease to lapse. Idempotent.
  void declare_dead(ServerId server);

  /// Re-admit a repaired/replaced server, live as of `now`.
  void rejoin(ServerId server, Nanos now);

  bool is_live(ServerId server) const { return !dead_.contains(server); }
  const std::set<ServerId>& dead_servers() const { return dead_; }
  std::size_t live_count() const;

  /// Coordinator: the lowest-id live server (kInvalidServer if none).
  ServerId coordinator() const;

 private:
  std::vector<Nanos> last_heartbeat_;
  std::set<ServerId> dead_;
  Nanos lease_length_;
};

}  // namespace chameleon::cluster
