#include "cluster/cluster.hpp"

namespace chameleon::cluster {

Cluster::Cluster(std::uint32_t server_count,
                 const flashsim::SsdConfig& ssd_config,
                 std::uint32_t ring_vnodes, const NetworkConfig& net_config)
    : ssd_config_(ssd_config),
      ring_(server_count, ring_vnodes),
      network_(net_config) {
  ssd_config_.validate();
  servers_.reserve(server_count);
  for (ServerId id = 0; id < server_count; ++id) {
    servers_.push_back(std::make_unique<FlashServer>(id, ssd_config_));
  }
}

std::vector<std::uint64_t> Cluster::erase_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(servers_.size());
  for (const auto& s : servers_) counts.push_back(s->total_erases());
  return counts;
}

std::uint64_t Cluster::total_erases() const {
  std::uint64_t sum = 0;
  for (const auto& s : servers_) sum += s->total_erases();
  return sum;
}

RunningStats Cluster::erase_stats() const {
  RunningStats stats;
  for (const auto& s : servers_) {
    stats.add(static_cast<double>(s->total_erases()));
  }
  return stats;
}

double Cluster::write_amplification() const {
  std::uint64_t host = 0;
  std::uint64_t moved = 0;
  for (const auto& s : servers_) {
    const auto& st = s->ssd_stats();
    host += st.host_page_writes;
    moved += st.gc_page_copies + st.wl_page_copies;
  }
  return host == 0 ? 1.0
                   : static_cast<double>(host + moved) /
                         static_cast<double>(host);
}

Nanos Cluster::avg_write_latency() const {
  Nanos total = 0;
  std::uint64_t ops = 0;
  for (const auto& s : servers_) {
    total += s->ssd_stats().total_write_latency;
    ops += s->ssd_stats().write_ops;
  }
  return ops == 0 ? 0 : total / static_cast<Nanos>(ops);
}

}  // namespace chameleon::cluster
