#include "cluster/hash_ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/fnv.hpp"

namespace chameleon::cluster {

HashRing::HashRing(std::uint32_t server_count, std::uint32_t vnodes)
    : vnodes_(vnodes == 0 ? 1 : vnodes) {
  points_.reserve(static_cast<std::size_t>(server_count) * vnodes_);
  for (ServerId id = 0; id < server_count; ++id) add_server(id);
}

std::uint64_t HashRing::vnode_hash(ServerId id, std::uint32_t vnode) {
  // FNV-1a of the packed (server, vnode) word plus a domain-separation tag,
  // finalized with mix64. The finalizer fixes raw FNV's weak high-bit
  // avalanche on short keys (visibly uneven server shares); the tag keeps
  // vnode points out of the key-hash domain, otherwise a key whose hash
  // input equals some server's packed word would always land exactly on
  // that server's point.
  constexpr std::uint64_t kRingDomainTag = 0x52494E47'504F494EULL;  // "RINGPOIN"
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(id) << 32) | vnode;
  return mix64(fnv1a64_continue(fnv1a64(packed), kRingDomainTag));
}

void HashRing::add_server(ServerId id) {
  for (std::uint32_t v = 0; v < vnodes_; ++v) {
    points_.push_back(Point{vnode_hash(id, v), id});
  }
  std::sort(points_.begin(), points_.end());
  ++server_count_;
}

bool HashRing::contains(ServerId id) const {
  return std::any_of(points_.begin(), points_.end(),
                     [id](const Point& p) { return p.server == id; });
}

void HashRing::remove_server(ServerId id) {
  const auto new_end = std::remove_if(
      points_.begin(), points_.end(),
      [id](const Point& p) { return p.server == id; });
  if (new_end == points_.end()) {
    throw std::invalid_argument("HashRing::remove_server: unknown server");
  }
  points_.erase(new_end, points_.end());
  --server_count_;
}

ServerId HashRing::primary(std::uint64_t key_hash) const {
  if (points_.empty()) {
    throw std::logic_error("HashRing: empty ring");
  }
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key_hash,
      [](const Point& p, std::uint64_t h) { return p.hash < h; });
  if (it == points_.end()) it = points_.begin();
  return it->server;
}

std::vector<ServerId> HashRing::successors(std::uint64_t key_hash,
                                           std::size_t n) const {
  if (n > server_count_) {
    throw std::invalid_argument(
        "HashRing::successors: more servers requested than exist");
  }
  std::vector<ServerId> out;
  out.reserve(n);
  if (n == 0) return out;

  auto it = std::lower_bound(
      points_.begin(), points_.end(), key_hash,
      [](const Point& p, std::uint64_t h) { return p.hash < h; });
  for (std::size_t walked = 0; walked < points_.size() && out.size() < n;
       ++walked) {
    if (it == points_.end()) it = points_.begin();
    const ServerId s = it->server;
    if (std::find(out.begin(), out.end(), s) == out.end()) {
      out.push_back(s);
    }
    ++it;
  }
  return out;
}

}  // namespace chameleon::cluster
