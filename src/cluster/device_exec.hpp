// Device-operation executor interface: the seam that lets one experiment run
// its per-device flash work (page programs, reads, trims) on shard worker
// threads while every *logical* decision stays on the coordinator thread.
//
// Contract (see docs/PARALLELISM.md for the full determinism argument):
//
//  - The coordinator splits each storage operation into a logical plan
//    (metadata, extent allocation — executed inline, in program order) and a
//    physical closure handed to defer(). The executor must run closures of
//    one server in submission order; closures of different servers touch
//    disjoint state and may run concurrently.
//  - deferrable(server) says whether that server's physical work may be
//    executed asynchronously. Implementations return false for servers whose
//    device ops can throw (armed fault injection, wear-out) so exceptions
//    surface at the same point they would sequentially, and false while the
//    executor is bypassed (control-plane sections run fully inline).
//  - Latency bookkeeping mirrors the sequential arithmetic: an *op* is one
//    client-visible operation whose latency is an inline coordinator part
//    (network, decode) plus the sum over fan-out *groups* of the max of the
//    group's device latencies. group_end() folds the max of any inline
//    (non-deferred) members; op_end() returns a token whose resolved value
//    becomes available after the next drain.
//
// All methods are coordinator-thread-only.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace chameleon::cluster {

class FlashServer;

class DeviceExecutor {
 public:
  virtual ~DeviceExecutor() = default;

  /// May `server`'s physical device work run asynchronously right now?
  virtual bool deferrable(const FlashServer& server) const = 0;

  /// Schedule `fn` (pure physical work against `server`'s device) on the
  /// server's shard. When `latency_counts` is true the returned Nanos joins
  /// the currently open fan-out group's max; trims and other fire-and-forget
  /// work pass false.
  virtual void defer(FlashServer& server, std::function<Nanos()> fn,
                     bool latency_counts) = 0;

  /// True when ops/groups should be scoped (an executor is attached and not
  /// bypassed). When false every defer() candidate must also be
  /// non-deferrable, so callers fall back to the sequential path.
  virtual bool engaged() const = 0;

  // --- fan-out group scoping (coordinator only) ---
  virtual void group_begin() = 0;
  /// Close the current group; `inline_max` is the max latency of members
  /// that executed inline (non-deferrable servers in a mixed fan-out).
  virtual void group_end(Nanos inline_max) = 0;

  // --- client-visible op scoping (coordinator only) ---
  virtual void op_begin() = 0;
  /// Close the op. Resolved latency = `inline_latency` + sum of group maxes;
  /// `on_resolved` (may be empty) runs on the coordinator during the next
  /// drain. Returns a token usable to query the resolved latency post-drain,
  /// or -1 when no op was open.
  virtual std::int64_t op_end(Nanos inline_latency,
                              std::function<void(Nanos)> on_resolved) = 0;
  /// Discard the current op's latency bookkeeping (exception unwind). Device
  /// closures already deferred stay queued — they mirror device work the
  /// sequential mode performed before the fault fired.
  virtual void op_abort() = 0;
};

}  // namespace chameleon::cluster
