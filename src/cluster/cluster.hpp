// The flash cluster: N FlashServers joined by a consistent-hash ring and a
// byte-accounting network. This is the substrate both Chameleon and the
// baseline balancers operate on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/flash_server.hpp"
#include "cluster/hash_ring.hpp"
#include "cluster/network.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "flashsim/ssd_config.hpp"

namespace chameleon::cluster {

class Cluster {
 public:
  Cluster(std::uint32_t server_count, const flashsim::SsdConfig& ssd_config,
          std::uint32_t ring_vnodes = 128,
          const NetworkConfig& net_config = {});

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(servers_.size());
  }
  FlashServer& server(ServerId id) { return *servers_[id]; }
  const FlashServer& server(ServerId id) const { return *servers_[id]; }

  /// Attach (or detach with nullptr) a device executor on every server, so
  /// per-device flash work can run on shard threads (see device_exec.hpp).
  void attach_executor(DeviceExecutor* exec) {
    exec_ = exec;
    for (auto& s : servers_) s->attach_executor(exec);
  }
  DeviceExecutor* executor() const { return exec_; }

  HashRing& ring() { return ring_; }
  const HashRing& ring() const { return ring_; }
  Network& network() { return network_; }
  const Network& network() const { return network_; }
  const flashsim::SsdConfig& ssd_config() const { return ssd_config_; }

  /// Per-server cumulative erase counts, indexed by ServerId.
  std::vector<std::uint64_t> erase_counts() const;
  std::uint64_t total_erases() const;

  /// Population statistics of per-server erase counts. The paper's "wear
  /// variance sigma" is stddev() of this.
  RunningStats erase_stats() const;

  /// Cluster-mean write amplification weighted by host pages written.
  double write_amplification() const;

  /// Mean device write latency across servers, weighted by write ops.
  Nanos avg_write_latency() const;

 private:
  flashsim::SsdConfig ssd_config_;
  std::vector<std::unique_ptr<FlashServer>> servers_;
  HashRing ring_;
  Network network_;
  DeviceExecutor* exec_ = nullptr;  ///< not owned
};

}  // namespace chameleon::cluster
