#include "cluster/network.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chameleon::cluster {

const char* traffic_name(Traffic t) {
  switch (t) {
    case Traffic::kClientWrite: return "client_write";
    case Traffic::kClientRead: return "client_read";
    case Traffic::kReplication: return "replication";
    case Traffic::kEcDistribution: return "ec_distribution";
    case Traffic::kConversion: return "conversion";
    case Traffic::kSwap: return "swap";
    case Traffic::kMigration: return "migration";
    case Traffic::kHeartbeat: return "heartbeat";
    case Traffic::kMetadata: return "metadata";
    case Traffic::kCount: break;
  }
  return "unknown";
}

namespace {

constexpr std::size_t kTrafficKinds = static_cast<std::size_t>(Traffic::kCount);

struct TrafficCounters {
  std::array<obs::Counter*, kTrafficKinds> bytes{};
  std::array<obs::Counter*, kTrafficKinds> messages{};
};

/// Registry handles stay valid for the process lifetime, so resolve the
/// per-kind series once instead of paying a map lookup per transfer.
const TrafficCounters& traffic_counters() {
  static const TrafficCounters counters = [] {
    TrafficCounters c;
    for (std::size_t i = 0; i < kTrafficKinds; ++i) {
      const char* kind = traffic_name(static_cast<Traffic>(i));
      c.bytes[i] = &obs::metrics().counter(
          "chameleon_network_bytes_total", {{"kind", kind}},
          "Bytes transferred on the modeled interconnect by traffic class");
      c.messages[i] = &obs::metrics().counter(
          "chameleon_network_messages_total", {{"kind", kind}},
          "Messages sent on the modeled interconnect by traffic class");
    }
    return c;
  }();
  return counters;
}

}  // namespace

namespace {

void count_net_fault(const char* kind) {
  if (!obs::enabled()) return;
  // One cached handle per fault kind; these are the only three call sites.
  auto& counter = obs::metrics().counter("chameleon_fault_injected_total",
                                         {{"kind", kind}},
                                         "Injected faults fired, by kind");
  counter.inc();
}

}  // namespace

Nanos Network::transfer(Traffic kind, std::uint64_t bytes) {
  Nanos fault_delay = 0;
  bool duplicated = false;
  if (faults_armed_ && faults_.affects(kind)) {
    // Fixed roll order (drop, delay, duplicate) keeps the RNG stream — and
    // therefore the whole fault sequence — reproducible for a given seed.
    const bool drop = fault_rng_.next_bool(faults_.drop_prob);
    const bool delay = fault_rng_.next_bool(faults_.delay_prob);
    duplicated = fault_rng_.next_bool(faults_.duplicate_prob);
    if (drop) {
      ++dropped_messages_;
      count_net_fault("net_drop");
      throw NetworkDropped(kind);
    }
    if (delay) {
      ++delayed_messages_;
      fault_delay = faults_.extra_delay;
      count_net_fault("net_delay");
    }
    if (duplicated) {
      ++duplicated_messages_;
      count_net_fault("net_duplicate");
    }
  }
  // A duplicated message consumes the wire twice (bytes and message count)
  // but completes when the first copy lands, so latency is unaffected.
  const std::uint64_t wire_bytes = duplicated ? 2 * bytes : bytes;
  const std::uint64_t wire_messages = duplicated ? 2 : 1;
  bytes_[static_cast<std::size_t>(kind)] += wire_bytes;
  messages_[static_cast<std::size_t>(kind)] += wire_messages;
  if (obs::enabled()) {
    const auto& counters = traffic_counters();
    counters.bytes[static_cast<std::size_t>(kind)]->inc(wire_bytes);
    counters.messages[static_cast<std::size_t>(kind)]->inc(wire_messages);
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kMessageSend)) {
      obs::TraceEvent e;
      e.type = obs::TraceType::kMessageSend;
      e.from = traffic_name(kind);
      e.a = bytes;
      sink.record(std::move(e));
    }
  }
  const double seconds =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  return config_.per_message_overhead + fault_delay +
         static_cast<Nanos>(std::llround(seconds * 1e9));
}

std::uint64_t Network::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto b : bytes_) sum += b;
  return sum;
}

std::uint64_t Network::balancing_bytes() const {
  return bytes(Traffic::kConversion) + bytes(Traffic::kSwap) +
         bytes(Traffic::kMigration);
}

void Network::reset() {
  bytes_.fill(0);
  messages_.fill(0);
}

}  // namespace chameleon::cluster
