#include "cluster/network.hpp"

#include <cmath>

namespace chameleon::cluster {

const char* traffic_name(Traffic t) {
  switch (t) {
    case Traffic::kClientWrite: return "client_write";
    case Traffic::kClientRead: return "client_read";
    case Traffic::kReplication: return "replication";
    case Traffic::kEcDistribution: return "ec_distribution";
    case Traffic::kConversion: return "conversion";
    case Traffic::kSwap: return "swap";
    case Traffic::kMigration: return "migration";
    case Traffic::kHeartbeat: return "heartbeat";
    case Traffic::kMetadata: return "metadata";
    case Traffic::kCount: break;
  }
  return "unknown";
}

Nanos Network::transfer(Traffic kind, std::uint64_t bytes) {
  bytes_[static_cast<std::size_t>(kind)] += bytes;
  ++messages_[static_cast<std::size_t>(kind)];
  const double seconds =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  return config_.per_message_overhead +
         static_cast<Nanos>(std::llround(seconds * 1e9));
}

std::uint64_t Network::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto b : bytes_) sum += b;
  return sum;
}

std::uint64_t Network::balancing_bytes() const {
  return bytes(Traffic::kConversion) + bytes(Traffic::kSwap) +
         bytes(Traffic::kMigration);
}

void Network::reset() {
  bytes_.fill(0);
  messages_.fill(0);
}

}  // namespace chameleon::cluster
