#include "cluster/network.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chameleon::cluster {

const char* traffic_name(Traffic t) {
  switch (t) {
    case Traffic::kClientWrite: return "client_write";
    case Traffic::kClientRead: return "client_read";
    case Traffic::kReplication: return "replication";
    case Traffic::kEcDistribution: return "ec_distribution";
    case Traffic::kConversion: return "conversion";
    case Traffic::kSwap: return "swap";
    case Traffic::kMigration: return "migration";
    case Traffic::kHeartbeat: return "heartbeat";
    case Traffic::kMetadata: return "metadata";
    case Traffic::kCount: break;
  }
  return "unknown";
}

namespace {

constexpr std::size_t kTrafficKinds = static_cast<std::size_t>(Traffic::kCount);

struct TrafficCounters {
  std::array<obs::Counter*, kTrafficKinds> bytes{};
  std::array<obs::Counter*, kTrafficKinds> messages{};
};

/// Registry handles stay valid for the process lifetime, so resolve the
/// per-kind series once instead of paying a map lookup per transfer.
const TrafficCounters& traffic_counters() {
  static const TrafficCounters counters = [] {
    TrafficCounters c;
    for (std::size_t i = 0; i < kTrafficKinds; ++i) {
      const char* kind = traffic_name(static_cast<Traffic>(i));
      c.bytes[i] = &obs::metrics().counter(
          "chameleon_network_bytes_total", {{"kind", kind}},
          "Bytes transferred on the modeled interconnect by traffic class");
      c.messages[i] = &obs::metrics().counter(
          "chameleon_network_messages_total", {{"kind", kind}},
          "Messages sent on the modeled interconnect by traffic class");
    }
    return c;
  }();
  return counters;
}

}  // namespace

Nanos Network::transfer(Traffic kind, std::uint64_t bytes) {
  bytes_[static_cast<std::size_t>(kind)] += bytes;
  ++messages_[static_cast<std::size_t>(kind)];
  if (obs::enabled()) {
    const auto& counters = traffic_counters();
    counters.bytes[static_cast<std::size_t>(kind)]->inc(bytes);
    counters.messages[static_cast<std::size_t>(kind)]->inc();
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kMessageSend)) {
      obs::TraceEvent e;
      e.type = obs::TraceType::kMessageSend;
      e.from = traffic_name(kind);
      e.a = bytes;
      sink.record(std::move(e));
    }
  }
  const double seconds =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  return config_.per_message_overhead +
         static_cast<Nanos>(std::llround(seconds * 1e9));
}

std::uint64_t Network::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto b : bytes_) sum += b;
  return sum;
}

std::uint64_t Network::balancing_bytes() const {
  return bytes(Traffic::kConversion) + bytes(Traffic::kSwap) +
         bytes(Traffic::kMigration);
}

void Network::reset() {
  bytes_.fill(0);
  messages_.fill(0);
}

}  // namespace chameleon::cluster
