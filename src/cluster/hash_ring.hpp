// Consistent hashing ring with virtual nodes (Karger et al.), the paper's
// data distribution mechanism ("maps data to a 50-node cluster using
// consistent hashing... the hash function is FNV-1a").
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/fnv.hpp"
#include "common/types.hpp"

namespace chameleon::cluster {

/// Ring position of a string key: FNV-1a finalized with mix64. Raw FNV-1a of
/// short sequential keys ("k-0", "k-1", ...) differs mostly in the low bits
/// and clusters in one arc of the ring, starving every other server; the
/// finalizer spreads it over the full 64-bit space (the same pattern as
/// kv::KvStore::placement_hash for object ids).
inline std::uint64_t key_point(std::string_view key) {
  return mix64(fnv1a64(key));
}

class HashRing {
 public:
  /// Build a ring for servers 0..server_count-1, each owning `vnodes` points.
  explicit HashRing(std::uint32_t server_count, std::uint32_t vnodes = 128);

  void add_server(ServerId id);
  void remove_server(ServerId id);
  /// True when `id` currently owns points on the ring.
  bool contains(ServerId id) const;

  /// Owner of a key: first ring point clockwise from the key's hash.
  ServerId primary(std::uint64_t key_hash) const;

  /// The n distinct servers clockwise from the key's hash (replica set /
  /// stripe set). n must not exceed the number of servers on the ring.
  std::vector<ServerId> successors(std::uint64_t key_hash, std::size_t n) const;

  std::size_t server_count() const { return server_count_; }
  std::size_t point_count() const { return points_.size(); }

 private:
  struct Point {
    std::uint64_t hash;
    ServerId server;
    bool operator<(const Point& other) const {
      return hash < other.hash || (hash == other.hash && server < other.server);
    }
  };

  static std::uint64_t vnode_hash(ServerId id, std::uint32_t vnode);

  std::vector<Point> points_;  ///< sorted by hash
  std::uint32_t vnodes_;
  std::size_t server_count_ = 0;
};

}  // namespace chameleon::cluster
