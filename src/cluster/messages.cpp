#include "cluster/messages.hpp"

#include <stdexcept>

namespace chameleon::cluster {
namespace wire {

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::uint64_t get_varint(const std::string& in, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (pos >= in.size() || shift > 63) {
      throw std::runtime_error("wire: truncated or oversized varint");
    }
    const auto byte = static_cast<std::uint8_t>(in[pos++]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

}  // namespace wire

std::string HeartbeatMessage::serialize() const {
  std::string out;
  wire::put_varint(out, server);
  wire::put_varint(out, epoch);
  wire::put_varint(out, erase_count);
  wire::put_varint(out, host_pages_this_epoch);
  wire::put_varint(out, logical_utilization_q);
  wire::put_varint(out, victim_utilization_q);
  return out;
}

HeartbeatMessage HeartbeatMessage::deserialize(const std::string& bytes) {
  HeartbeatMessage msg;
  std::size_t pos = 0;
  msg.server = static_cast<ServerId>(wire::get_varint(bytes, pos));
  msg.epoch = static_cast<Epoch>(wire::get_varint(bytes, pos));
  msg.erase_count = wire::get_varint(bytes, pos);
  msg.host_pages_this_epoch = wire::get_varint(bytes, pos);
  msg.logical_utilization_q =
      static_cast<std::uint32_t>(wire::get_varint(bytes, pos));
  msg.victim_utilization_q =
      static_cast<std::uint32_t>(wire::get_varint(bytes, pos));
  if (pos != bytes.size()) {
    throw std::runtime_error("HeartbeatMessage: trailing bytes");
  }
  return msg;
}

std::string RemapCommand::serialize() const {
  std::string out;
  wire::put_varint(out, oid);
  wire::put_varint(out, epoch);
  wire::put_varint(out, new_state);
  wire::put_varint(out, destination.size());
  for (const ServerId s : destination) wire::put_varint(out, s);
  return out;
}

RemapCommand RemapCommand::deserialize(const std::string& bytes) {
  RemapCommand cmd;
  std::size_t pos = 0;
  cmd.oid = wire::get_varint(bytes, pos);
  cmd.epoch = static_cast<Epoch>(wire::get_varint(bytes, pos));
  cmd.new_state = static_cast<std::uint8_t>(wire::get_varint(bytes, pos));
  const auto n = wire::get_varint(bytes, pos);
  if (n > 64) throw std::runtime_error("RemapCommand: implausible set size");
  for (std::uint64_t i = 0; i < n; ++i) {
    cmd.destination.push_back(
        static_cast<ServerId>(wire::get_varint(bytes, pos)));
  }
  if (pos != bytes.size()) {
    throw std::runtime_error("RemapCommand: trailing bytes");
  }
  return cmd;
}

}  // namespace chameleon::cluster
