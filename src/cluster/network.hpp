// In-process stand-in for the cluster interconnect. Carries no payloads;
// it accounts bytes per traffic class (the paper's network-overhead claims
// about EDM vs EWO are claims about these counters) and can model transfer
// latency with a simple bandwidth + per-message cost.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace chameleon::cluster {

enum class Traffic : std::size_t {
  kClientWrite = 0,   ///< client -> primary object payload
  kClientRead,        ///< server -> client object payload
  kReplication,       ///< fan-out of replica copies
  kEcDistribution,    ///< fan-out of EC stripes
  kConversion,        ///< eager REP<->EC conversion transfers
  kSwap,              ///< HCDS eager swap transfers
  kMigration,         ///< EDM bulk data migration
  kHeartbeat,         ///< monitor -> balancer statistics
  kMetadata,          ///< mapping table updates
  kCount
};

const char* traffic_name(Traffic t);

struct NetworkConfig {
  /// Effective per-link bandwidth in bytes/second (10 Gb/s default).
  double bandwidth_bytes_per_sec = 1.25e9;
  Nanos per_message_overhead = 10 * kMicrosecond;
};

class Network {
 public:
  explicit Network(const NetworkConfig& config = {}) : config_(config) {}

  /// Account one transfer and return its modeled latency.
  Nanos transfer(Traffic kind, std::uint64_t bytes);

  std::uint64_t bytes(Traffic kind) const {
    return bytes_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t messages(Traffic kind) const {
    return messages_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_bytes() const;

  /// Balancing-attributable traffic: everything except client I/O fan-out.
  std::uint64_t balancing_bytes() const;

  void reset();

 private:
  NetworkConfig config_;
  std::array<std::uint64_t, static_cast<std::size_t>(Traffic::kCount)> bytes_{};
  std::array<std::uint64_t, static_cast<std::size_t>(Traffic::kCount)>
      messages_{};
};

}  // namespace chameleon::cluster
