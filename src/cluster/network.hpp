// In-process stand-in for the cluster interconnect. Carries no payloads;
// it accounts bytes per traffic class (the paper's network-overhead claims
// about EDM vs EWO are claims about these counters) and can model transfer
// latency with a simple bandwidth + per-message cost.
#pragma once

#include <array>
#include <cstdint>

#include "common/faults.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace chameleon::cluster {

enum class Traffic : std::size_t {
  kClientWrite = 0,   ///< client -> primary object payload
  kClientRead,        ///< server -> client object payload
  kReplication,       ///< fan-out of replica copies
  kEcDistribution,    ///< fan-out of EC stripes
  kConversion,        ///< eager REP<->EC conversion transfers
  kSwap,              ///< HCDS eager swap transfers
  kMigration,         ///< EDM bulk data migration
  kHeartbeat,         ///< monitor -> balancer statistics
  kMetadata,          ///< mapping table updates
  kCount
};

const char* traffic_name(Traffic t);

struct NetworkConfig {
  /// Effective per-link bandwidth in bytes/second (10 Gb/s default).
  double bandwidth_bytes_per_sec = 1.25e9;
  Nanos per_message_overhead = 10 * kMicrosecond;
};

/// Thrown by transfer() when an armed fault plan drops the message. Callers
/// treat it like a lost datagram: the bytes never arrived, retry or degrade.
struct NetworkDropped : TransientFault {
  explicit NetworkDropped(Traffic dropped)
      : TransientFault(std::string("network message dropped: ") +
                       traffic_name(dropped)),
        kind(dropped) {}
  Traffic kind;
};

/// Deterministic message-level fault plan. Each transfer of a masked traffic
/// class independently rolls drop, then delay, then duplication against a
/// seeded RNG; a fixed transfer sequence yields an identical fault sequence.
struct NetworkFaultPlan {
  double drop_prob = 0.0;       ///< message lost; transfer() throws
  double delay_prob = 0.0;      ///< message stalled by extra_delay
  Nanos extra_delay = 0;
  double duplicate_prob = 0.0;  ///< message retransmitted (bytes counted 2x)
  /// Bitmask of affected Traffic classes (bit i = class i). Default: all.
  std::uint64_t traffic_mask = ~std::uint64_t{0};

  bool affects(Traffic kind) const {
    return (traffic_mask & (std::uint64_t{1} << static_cast<std::size_t>(
                                kind))) != 0;
  }
};

class Network {
 public:
  explicit Network(const NetworkConfig& config = {}) : config_(config) {}

  /// Account one transfer and return its modeled latency. With an armed
  /// fault plan this may throw NetworkDropped (drop), inflate the returned
  /// latency (delay), or account an extra message (duplication).
  Nanos transfer(Traffic kind, std::uint64_t bytes);

  /// Arm deterministic message faults; replaces any previous plan.
  void arm_faults(const NetworkFaultPlan& plan, std::uint64_t seed) {
    faults_ = plan;
    fault_rng_ = Xoshiro256(seed);
    faults_armed_ = plan.drop_prob > 0.0 || plan.delay_prob > 0.0 ||
                    plan.duplicate_prob > 0.0;
  }
  void disarm_faults() { faults_armed_ = false; }
  bool faults_armed() const { return faults_armed_; }

  std::uint64_t dropped_messages() const { return dropped_messages_; }
  std::uint64_t delayed_messages() const { return delayed_messages_; }
  std::uint64_t duplicated_messages() const { return duplicated_messages_; }

  std::uint64_t bytes(Traffic kind) const {
    return bytes_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t messages(Traffic kind) const {
    return messages_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_bytes() const;

  /// Balancing-attributable traffic: everything except client I/O fan-out.
  std::uint64_t balancing_bytes() const;

  void reset();

 private:
  NetworkConfig config_;
  std::array<std::uint64_t, static_cast<std::size_t>(Traffic::kCount)> bytes_{};
  std::array<std::uint64_t, static_cast<std::size_t>(Traffic::kCount)>
      messages_{};

  NetworkFaultPlan faults_;
  Xoshiro256 fault_rng_{0};
  bool faults_armed_ = false;
  std::uint64_t dropped_messages_ = 0;
  std::uint64_t delayed_messages_ = 0;
  std::uint64_t duplicated_messages_ = 0;
};

}  // namespace chameleon::cluster
