#include "cluster/membership.hpp"

#include <stdexcept>

namespace chameleon::cluster {

MembershipService::MembershipService(std::uint32_t server_count,
                                     Nanos lease_length)
    : last_heartbeat_(server_count, 0), lease_length_(lease_length) {
  if (server_count == 0 || lease_length <= 0) {
    throw std::invalid_argument("MembershipService: bad parameters");
  }
}

void MembershipService::heartbeat(ServerId server, Nanos now) {
  if (server >= last_heartbeat_.size()) {
    throw std::out_of_range("MembershipService::heartbeat: unknown server");
  }
  if (dead_.contains(server)) return;  // must rejoin explicitly
  last_heartbeat_[server] = now;
}

std::vector<ServerId> MembershipService::detect_failures(Nanos now) {
  std::vector<ServerId> newly_dead;
  for (ServerId s = 0; s < last_heartbeat_.size(); ++s) {
    if (dead_.contains(s)) continue;
    if (now - last_heartbeat_[s] > lease_length_) {
      dead_.insert(s);
      newly_dead.push_back(s);
    }
  }
  return newly_dead;
}

void MembershipService::declare_dead(ServerId server) {
  if (server >= last_heartbeat_.size()) {
    throw std::out_of_range("MembershipService::declare_dead: unknown server");
  }
  dead_.insert(server);
}

void MembershipService::rejoin(ServerId server, Nanos now) {
  if (server >= last_heartbeat_.size()) {
    throw std::out_of_range("MembershipService::rejoin: unknown server");
  }
  dead_.erase(server);
  last_heartbeat_[server] = now;
}

std::size_t MembershipService::live_count() const {
  return last_heartbeat_.size() - dead_.size();
}

ServerId MembershipService::coordinator() const {
  for (ServerId s = 0; s < last_heartbeat_.size(); ++s) {
    if (!dead_.contains(s)) return s;
  }
  return kInvalidServer;
}

}  // namespace chameleon::cluster
