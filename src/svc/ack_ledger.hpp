// Client-side acknowledgment ledger: the ground truth for "zero acked-write
// loss" chaos verification (docs/FAULT_MODEL.md). Every PUT a client issues
// is recorded *before* it hits the wire (in-doubt), and promoted to *acked*
// when the server answers kOk. After a crash/recovery cycle, the recovered
// value of each key must equal either the last acknowledged value or some
// value that was still in doubt (issued, never acked) after it — anything
// else is acknowledged-write loss or corruption, and the chaos suite treats
// it as a hard failure.
//
// The check is exact only when each key's operations are sequential (one
// writer per key, next PUT issued after the previous one resolved). The
// load generator partitions keys per worker to guarantee exactly that.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace chameleon::svc {

class AckLedger {
 public:
  /// Why a key's verification failed.
  enum class Verdict : std::uint8_t {
    kOk,            ///< value is consistent with the ledger
    kLostAck,       ///< acked write missing or overwritten by an older value
    kCorrupt,       ///< value matches nothing this client ever wrote
  };

  struct KeyRecord {
    /// CRC32C of the last value the server acknowledged, and the issue
    /// sequence number of that write.
    std::optional<std::uint32_t> acked_crc;
    std::uint64_t acked_seq = 0;
    /// Writes issued but never acknowledged (crash/timeout mid-flight),
    /// oldest first. Any of these may legitimately be the surviving value
    /// if it was issued after the last acked write.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> in_doubt;
  };

  struct CheckResult {
    Verdict verdict = Verdict::kOk;
    std::string detail;  ///< human-readable mismatch description
  };

  /// Record a PUT about to be sent. Returns the issue sequence number to
  /// pass to acked() when (if) the server confirms it.
  std::uint64_t issued(std::string_view key, std::uint32_t value_crc);

  /// The server acknowledged issue `seq` for `key` with kOk. The write is
  /// now durable by contract; earlier in-doubt entries for the key are
  /// superseded and dropped.
  void acked(std::string_view key, std::uint64_t seq);

  /// The write is known NOT to have been applied (e.g. the server shed it
  /// before touching the store). Drops the in-doubt entry. A transport
  /// failure is NOT such a case — the server may have applied the write
  /// before the connection died — so callers must leave those in doubt.
  void not_applied(std::string_view key, std::uint64_t seq);

  /// Verify one recovered value (or its absence) against the ledger.
  /// `found` says whether the key exists post-recovery; `value_crc` is the
  /// CRC32C of the recovered value when it does.
  CheckResult check(std::string_view key, bool found,
                    std::uint32_t value_crc) const;

  /// Keys with at least one acked write — the set check() must cover.
  std::vector<std::string> acked_keys() const;

  std::uint64_t issued_total() const;
  std::uint64_t acked_total() const;

  /// One JSON object per tracked key (machine-readable; consumed by the
  /// chaos harness and archived from CI runs for postmortems).
  void write_jsonl(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, KeyRecord> keys_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t issued_total_ = 0;
  std::uint64_t acked_total_ = 0;
};

}  // namespace chameleon::svc
