#include "svc/session.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace chameleon::svc {

Session::Session(int fd, std::uint64_t id, std::uint32_t max_payload)
    : last_activity(std::chrono::steady_clock::now()),
      fd_(fd),
      id_(id),
      decoder_(max_payload) {}

Session::~Session() { close(); }

void Session::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Session::release_fd() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Session::IoResult Session::read_some(std::uint64_t* bytes_read) {
  if (fd_ < 0) return IoResult::kError;
  std::uint8_t chunk[16 * 1024];
  bool progressed = false;
  for (;;) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      decoder_.feed({chunk, static_cast<std::size_t>(n)});
      if (bytes_read != nullptr) {
        *bytes_read += static_cast<std::uint64_t>(n);
      }
      last_activity = std::chrono::steady_clock::now();
      progressed = true;
      continue;
    }
    if (n == 0) return IoResult::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return progressed ? IoResult::kOk : IoResult::kWouldBlock;
    }
    if (errno == EINTR) continue;
    return IoResult::kError;
  }
}

void Session::enqueue(const std::vector<std::uint8_t>& bytes) {
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

Session::IoResult Session::flush(std::uint64_t* bytes_written) {
  if (fd_ < 0) return IoResult::kError;
  while (out_off_ < out_.size()) {
    // MSG_NOSIGNAL: a peer that resets mid-flush must surface as EPIPE, not
    // deliver SIGPIPE and kill the whole server process.
    const ssize_t n = ::send(fd_, out_.data() + out_off_,
                             out_.size() - out_off_, MSG_NOSIGNAL);
    if (n > 0) {
      out_off_ += static_cast<std::size_t>(n);
      if (bytes_written != nullptr) {
        *bytes_written += static_cast<std::uint64_t>(n);
      }
      last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoResult::kWouldBlock;
    }
    if (n < 0 && errno == EINTR) continue;
    return IoResult::kError;
  }
  if (out_off_ == out_.size()) {
    out_.clear();
    out_off_ = 0;
  }
  return IoResult::kOk;
}

}  // namespace chameleon::svc
