#include "svc/session.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace chameleon::svc {

Session::Session(int fd, std::uint64_t id, std::uint32_t max_payload,
                 BufferPool* pool)
    : last_activity(std::chrono::steady_clock::now()),
      fd_(fd),
      id_(id),
      decoder_(max_payload),
      pool_(pool) {}

Session::~Session() {
  close();
  if (pool_ != nullptr) {
    while (!out_.empty()) {
      pool_->put(std::move(out_.front()));
      out_.pop_front();
    }
  }
}

void Session::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Session::release_fd() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Session::IoResult Session::read_some(std::uint64_t* bytes_read) {
  if (fd_ < 0) return IoResult::kError;
  std::uint8_t chunk[16 * 1024];
  bool progressed = false;
  for (;;) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      decoder_.feed({chunk, static_cast<std::size_t>(n)});
      if (bytes_read != nullptr) {
        *bytes_read += static_cast<std::uint64_t>(n);
      }
      last_activity = std::chrono::steady_clock::now();
      progressed = true;
      continue;
    }
    if (n == 0) return IoResult::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return progressed ? IoResult::kOk : IoResult::kWouldBlock;
    }
    if (errno == EINTR) continue;
    return IoResult::kError;
  }
}

std::vector<std::uint8_t>& Session::tail_chunk() {
  if (out_.empty() || out_.back().size() >= kChunkTarget) {
    out_.push_back(pool_ != nullptr ? pool_->get()
                                    : std::vector<std::uint8_t>{});
  }
  return out_.back();
}

void Session::enqueue(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint8_t>& chunk = tail_chunk();
  chunk.insert(chunk.end(), bytes.begin(), bytes.end());
  pending_bytes_ += bytes.size();
}

void Session::enqueue(const Frame& frame) {
  std::vector<std::uint8_t>& chunk = tail_chunk();
  const std::size_t before = chunk.size();
  encode_frame(frame, chunk);
  pending_bytes_ += chunk.size() - before;
}

void Session::recycle_head() {
  if (pool_ != nullptr) {
    pool_->put(std::move(out_.front()));
  }
  out_.pop_front();
  head_off_ = 0;
}

Session::IoResult Session::flush(std::uint64_t* bytes_written) {
  if (fd_ < 0) return IoResult::kError;
  while (pending_bytes_ > 0) {
    // Batch up to kMaxFlushIov chunks into one vectored write. The head
    // chunk enters at its cursor; every later chunk enters whole.
    iovec iov[kMaxFlushIov];
    std::size_t niov = 0;
    for (auto it = out_.begin(); it != out_.end() && niov < kMaxFlushIov;
         ++it) {
      const std::size_t off = niov == 0 ? head_off_ : 0;
      if (it->size() == off) continue;  // empty tail chunk (never mid-queue)
      iov[niov].iov_base = it->data() + off;
      iov[niov].iov_len = it->size() - off;
      ++niov;
    }
    if (niov == 0) break;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    // MSG_NOSIGNAL: a peer that resets mid-flush must surface as EPIPE, not
    // deliver SIGPIPE and kill the whole server process.
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      std::size_t left = static_cast<std::size_t>(n);
      pending_bytes_ -= left;
      if (bytes_written != nullptr) {
        *bytes_written += static_cast<std::uint64_t>(n);
      }
      // Advance the cursor chunk by chunk; a short write that stops inside a
      // chunk just moves head_off_ — the unsent suffix (and every later
      // chunk) is retransmitted from exactly that byte on the next call.
      while (left > 0) {
        const std::size_t head_left = out_.front().size() - head_off_;
        if (left < head_left) {
          head_off_ += left;
          left = 0;
        } else {
          left -= head_left;
          recycle_head();
        }
      }
      last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoResult::kWouldBlock;
    }
    if (n < 0 && errno == EINTR) continue;
    return IoResult::kError;
  }
  // Fully flushed: drop any drained-but-kept chunks (e.g. an empty tail).
  while (!out_.empty()) recycle_head();
  return IoResult::kOk;
}

}  // namespace chameleon::svc
