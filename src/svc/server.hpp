// Epoll-based reactor serving the Chameleon KV cluster over the svc wire
// protocol (docs/SERVICE.md). One IO thread owns every socket and all session
// state; a worker pool executes admitted requests against the KvStore behind
// the coordinator mutex (logical decisions stay serialized — the same
// discipline DeviceExecutor imposes inside the simulation — while the store's
// codec pool may still fan shard arithmetic out underneath).
//
// Lifecycle: start() binds/listens and spawns the threads; request_stop() is
// async-signal-safe (an eventfd write), so a SIGTERM handler can trigger the
// graceful drain: stop accepting, answer new requests with kShuttingDown,
// finish every admitted request, flush every response, then close. stop() is
// request_stop() + wait().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/chameleon.hpp"
#include "obs/span.hpp"
#include "svc/admission.hpp"
#include "svc/session.hpp"
#include "svc/wire.hpp"

namespace chameleon::obs {
class Counter;
class Gauge;
class HistogramMetric;
}  // namespace chameleon::obs

namespace chameleon::svc {

/// Seeded serving-path fault hooks (the chaos harness drives these): each
/// received frame rolls connection-drop first, then response-stall, on one
/// deterministic RNG stream, mirroring the FaultInjector's arming discipline.
struct ServiceFaultPlan {
  double conn_drop_rate = 0.0;  ///< P(kill the connection on a frame)
  double stall_rate = 0.0;      ///< P(delay the response by `stall`)
  Nanos stall = 20 * kMillisecond;  ///< real-time response delay
  std::uint64_t seed = 0x5eed;
};

/// Slow-request capture (docs/OBSERVABILITY.md): a data op whose span total
/// exceeds `threshold` (0 = off), or that the deterministic 1-in-N sampler
/// picks, records a kSvcSlowRequest trace event carrying the full per-stage
/// breakdown. The sampler is a pure function of (seed, request_id) —
/// obs::span_sampled — so replay/chaos runs capture byte-identical sets no
/// matter how threads interleave.
struct SlowRequestConfig {
  Nanos threshold = 0;             ///< capture when span total >= this; 0=off
  std::uint64_t sample_every = 0;  ///< deterministic 1-in-N sample; 0=off
  std::uint64_t seed = 0x5eed;
};

/// Coarse lifecycle state the server reports over the wire (HEALTH op) so
/// supervisors and load generators can probe readiness instead of sleeping:
/// a freshly exec'd durable server listens immediately but sheds data ops
/// with kRetryLater while recovery replays the WAL (kRecovering), serves
/// once set_serving() is called, and reports kDraining during the graceful
/// drain.
enum class ServingState : std::uint8_t { kRecovering, kServing, kDraining };
const char* serving_state_name(ServingState s);

/// Recovery facts a durable boot hands the server (chameleon_server does
/// this after durability::Manager::open()) so restarts are observable over
/// the wire: both STATS and HEALTH carry these fields.
struct RecoveryInfo {
  bool recovered = false;            ///< prior on-disk state was restored
  std::uint64_t recoveries_total = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t checkpoint_seq = 0;
  std::uint64_t last_recovery_unix_ms = 0;  ///< wall clock, for operators
  double last_recovery_seconds = 0.0;       ///< how long recovery took
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;     ///< 0 = ephemeral (read back via port())
  std::uint32_t workers = 2;  ///< request-execution threads
  /// Start in ServingState::kRecovering: listen and answer control ops
  /// (HEALTH/STATS/PING) immediately, but shed data ops with kRetryLater
  /// until set_serving() flips the state. A durable boot uses this so
  /// recovery time is probe-able downtime, not connection-refused darkness.
  bool start_recovering = false;
  AdmissionConfig admission;
  SlowRequestConfig slow;
  std::uint32_t max_payload = kDefaultMaxPayload;
  /// Sessions idle longer than this (no traffic, nothing in flight) are
  /// reaped. 0 disables reaping.
  Nanos idle_timeout = 60 * kSecond;
  /// stop(): maximum real time to wait for in-flight requests and pending
  /// responses before closing sessions anyway.
  Nanos drain_timeout = 5 * kSecond;
  /// Advance the balancer's virtual clock by one epoch every N executed data
  /// ops (0 = never), so wear balancing runs under served traffic.
  std::uint64_t epoch_every_ops = 10'000;
  ServiceFaultPlan faults;
};

/// Point-in-time counters (all monotone except sessions_open/inflight).
struct ServerStats {
  std::uint64_t accepted_total = 0;
  std::uint64_t sessions_open = 0;
  std::uint64_t sessions_closed_total = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t responses_total = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t protocol_errors_total = 0;
  std::uint64_t faults_injected_total = 0;
  std::uint64_t bytes_read_total = 0;
  std::uint64_t bytes_written_total = 0;
  std::uint64_t inflight = 0;
  std::uint64_t slow_requests_total = 0;  ///< kSvcSlowRequest events recorded
  std::uint64_t trace_dropped = 0;  ///< trace-ring events lost to wraparound
  /// Requests answered kDeadlineExceeded: shed on arrival (deadline already
  /// lapsed) plus shed at dequeue (deadline lapsed on the worker queue).
  std::uint64_t deadline_exceeded_total = 0;
  double uptime_seconds = 0.0;      ///< since the last successful start()
  bool drained_clean = false;  ///< last drain finished inside drain_timeout
  ServingState state = ServingState::kServing;
};

class Server {
 public:
  /// `system` must outlive the server. Serving enables the payload plane on
  /// the first PUT (via kv::Client).
  Server(core::Chameleon& system, const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn the IO thread and worker pool. Throws
  /// std::runtime_error on socket errors.
  void start();

  /// Actual bound port (differs from config when config.port == 0).
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return config_.host; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Async-signal-safe drain trigger (eventfd write; callable from a signal
  /// handler). The IO thread notices and starts the graceful drain.
  void request_stop() noexcept;

  /// Block until the IO thread finishes the drain, then join the workers and
  /// release every socket. Idempotent; safe to call concurrently.
  void wait();

  /// request_stop() + wait().
  void stop();

  ServerStats stats() const;
  const ServerConfig& config() const { return config_; }

  /// Leave ServingState::kRecovering and start accepting data ops. Safe to
  /// call from any thread; a no-op when already serving or draining.
  void set_serving();
  ServingState state() const {
    return static_cast<ServingState>(state_.load(std::memory_order_acquire));
  }

  /// Install the recovery facts reported by STATS and HEALTH. Call before
  /// set_serving() on a durable boot; callable from any thread.
  void set_recovery_info(const RecoveryInfo& info);
  RecoveryInfo recovery_info() const;

 private:
  struct Completion {
    std::shared_ptr<Session> session;
    Frame response;
    Op op = Op::kPing;
    std::chrono::steady_clock::time_point admitted_at;
    /// Absolute deadline (receipt time + the frame's deadline_ms); the
    /// worker sheds instead of executing once this passes. time_point::max()
    /// when the request carried no deadline.
    std::chrono::steady_clock::time_point deadline;
    std::uint64_t request_bytes = 0;
    std::uint64_t request_id = 0;
    /// Stage attribution, stamped along the way: decode/admission on the IO
    /// thread, queue/store-exec (with the WAL carve-out) on the worker,
    /// completion/flush back on the IO thread. Never touched concurrently —
    /// ownership moves with the completion through the queue.
    obs::Span span;
  };
  struct MetricHandles {
    obs::Counter* requests[static_cast<std::size_t>(Op::kCount)] = {};
    obs::HistogramMetric* latency[static_cast<std::size_t>(Op::kCount)] = {};
    /// chameleon_svc_stage_seconds{op,stage}: resolved for data ops only.
    obs::HistogramMetric* stage[static_cast<std::size_t>(Op::kCount)]
                               [static_cast<std::size_t>(
                                   obs::SvcStage::kCount)] = {};
    obs::Counter* shed_session = nullptr;
    obs::Counter* shed_global = nullptr;
    obs::Counter* shed_deadline = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* sessions_opened = nullptr;
    obs::Counter* sessions_closed = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Gauge* inflight = nullptr;
    bool resolved = false;
  };

  void io_loop();
  void accept_ready();
  void on_readable(const std::shared_ptr<Session>& session);
  /// Returns false when the frame tore the session down. `span` carries the
  /// decode stamp taken by on_readable.
  bool handle_frame(const std::shared_ptr<Session>& session, Frame frame,
                    obs::Span span);
  Frame control_response(const Frame& request);
  Frame execute(const Frame& request);
  void maybe_tick_epoch_locked();
  void drain_completions();
  void pump_out(const std::shared_ptr<Session>& session);
  /// Takes its argument by value: callers often pass the shared_ptr stored
  /// in sessions_ itself, which the erase below would otherwise destroy
  /// while we still hold a reference to it.
  void close_session(std::shared_ptr<Session> session);
  /// ::close the fds parked by close_session. Must run between epoll batches
  /// (and after the loop exits), never while a batch's events are still being
  /// dispatched — see close_session.
  void flush_deferred_closes();
  void reap_idle(std::chrono::steady_clock::time_point now);
  void update_epoll(Session& session);
  std::string stats_json() const;
  std::string health_json() const;
  void note_request(Op op);
  void note_response(Op op, Nanos latency);
  void note_fault(const char* kind);
  /// Feed the finished span into the per-stage histograms and, when the
  /// request was slow or deterministically sampled, record the
  /// kSvcSlowRequest trace event with the full breakdown. IO thread only.
  void finalize_span(const Completion& c);

  core::Chameleon& system_;
  ServerConfig config_;
  MetricHandles metric_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  std::thread io_thread_;
  std::unique_ptr<ThreadPool> pool_;
  std::mutex lifecycle_mutex_;  ///< serializes wait()/cleanup

  AdmissionController admission_;
  Xoshiro256 fault_rng_;  ///< IO-thread only

  /// Serializes every KvStore/Chameleon call (the coordinator discipline).
  std::mutex store_mutex_;
  std::uint64_t ops_since_epoch_ = 0;
  /// Last epoch observed under store_mutex_, republished for trace events
  /// recorded on the IO thread without taking the store lock.
  std::atomic<std::uint64_t> epoch_cache_{0};

  std::mutex completion_mutex_;
  std::deque<Completion> completions_;

  std::map<int, std::shared_ptr<Session>> sessions_;  ///< IO-thread only
  /// Fds removed from sessions_ this epoll batch, held open until the batch
  /// finishes so accept4 cannot recycle a number that stale queued events
  /// still reference. IO-thread only.
  std::vector<int> deferred_close_fds_;
  std::uint64_t next_session_id_ = 1;

  std::chrono::steady_clock::time_point start_time_{};

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> io_done_{false};
  bool draining_ = false;  ///< IO-thread only
  std::chrono::steady_clock::time_point drain_deadline_;

  /// ServingState, readable from any thread (HEALTH/STATS render it).
  std::atomic<std::uint8_t> state_{
      static_cast<std::uint8_t>(ServingState::kServing)};
  mutable std::mutex recovery_mutex_;
  RecoveryInfo recovery_;

  // stats (atomics: read from any thread via stats())
  std::atomic<std::uint64_t> accepted_total_{0};
  std::atomic<std::uint64_t> sessions_closed_total_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> responses_total_{0};
  std::atomic<std::uint64_t> protocol_errors_total_{0};
  std::atomic<std::uint64_t> faults_injected_total_{0};
  std::atomic<std::uint64_t> bytes_read_total_{0};
  std::atomic<std::uint64_t> bytes_written_total_{0};
  std::atomic<std::uint64_t> sessions_open_{0};
  std::atomic<std::uint64_t> slow_requests_total_{0};
  std::atomic<std::uint64_t> deadline_exceeded_total_{0};
  std::atomic<bool> drained_clean_{false};
};

/// Register a signal handler on each of `signals` that triggers `server`'s
/// graceful drain via request_stop() (async-signal-safe). One server at a
/// time; passing nullptr unregisters.
void drain_on_signals(Server* server, std::initializer_list<int> signals);

}  // namespace chameleon::svc
