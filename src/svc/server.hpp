// Epoll-based reactor server for the Chameleon KV cluster over the svc wire
// protocol (docs/SERVICE.md). One or more IO (reactor) threads own the
// sockets and session state; admitted data ops execute on one of two store
// backends:
//
//   StoreMode::kSharded (default) — a StorePipeline coordinator thread owns
//   every core::Chameleon call (no store mutex exists) and fans per-device
//   flash work out to sim::ShardExecutor shard threads; balancer epochs and
//   DIGEST run in bypass windows behind drain fences (docs/PARALLELISM.md).
//
//   StoreMode::kMutex — the historical backend: a worker ThreadPool executes
//   ops behind one coordinator mutex. Kept as the oracle the sharded path is
//   digest-equivalence-tested against.
//
// With config.reactors > 1 each reactor owns its own epoll set, wake fd,
// accept socket (SO_REUSEPORT — the kernel spreads connections), session
// table, buffer pool, and completion queue; completions route back to the
// reactor owning the session, and the completion eventfd is written only on
// an empty→non-empty queue transition (batched wakeups).
//
// Lifecycle: start() binds/listens and spawns the threads; request_stop() is
// async-signal-safe (eventfd writes), so a SIGTERM handler can trigger the
// graceful drain: stop accepting, answer new requests with kShuttingDown,
// finish every admitted request, flush every response, then close. stop() is
// request_stop() + wait().
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/chameleon.hpp"
#include "obs/span.hpp"
#include "svc/admission.hpp"
#include "svc/session.hpp"
#include "svc/store_pipeline.hpp"
#include "svc/wire.hpp"

namespace chameleon::obs {
class Counter;
class Gauge;
class HistogramMetric;
}  // namespace chameleon::obs

namespace chameleon::durability {
class GroupCommit;
}  // namespace chameleon::durability

namespace chameleon::svc {

/// Seeded serving-path fault hooks (the chaos harness drives these): each
/// received frame rolls connection-drop first, then response-stall, on one
/// deterministic RNG stream, mirroring the FaultInjector's arming discipline.
/// With multiple reactors each reactor derives its own stream (seed + index).
struct ServiceFaultPlan {
  double conn_drop_rate = 0.0;  ///< P(kill the connection on a frame)
  double stall_rate = 0.0;      ///< P(delay the response by `stall`)
  Nanos stall = 20 * kMillisecond;  ///< real-time response delay
  std::uint64_t seed = 0x5eed;
};

/// Slow-request capture (docs/OBSERVABILITY.md): a data op whose span total
/// exceeds `threshold` (0 = off), or that the deterministic 1-in-N sampler
/// picks, records a kSvcSlowRequest trace event carrying the full per-stage
/// breakdown. The sampler is a pure function of (seed, request_id) —
/// obs::span_sampled — so replay/chaos runs capture byte-identical sets no
/// matter how threads interleave.
struct SlowRequestConfig {
  Nanos threshold = 0;             ///< capture when span total >= this; 0=off
  std::uint64_t sample_every = 0;  ///< deterministic 1-in-N sample; 0=off
  std::uint64_t seed = 0x5eed;
};

/// Coarse lifecycle state the server reports over the wire (HEALTH op) so
/// supervisors and load generators can probe readiness instead of sleeping:
/// a freshly exec'd durable server listens immediately but sheds data ops
/// with kRetryLater while recovery replays the WAL (kRecovering), serves
/// once set_serving() is called, and reports kDraining during the graceful
/// drain.
enum class ServingState : std::uint8_t { kRecovering, kServing, kDraining };
const char* serving_state_name(ServingState s);

/// Which backend executes admitted data ops (see the file comment).
enum class StoreMode : std::uint8_t { kMutex, kSharded };
const char* store_mode_name(StoreMode mode);
/// Parse "mutex"/"sharded"; throws std::invalid_argument otherwise.
StoreMode store_mode_from_name(const std::string& name);

/// Recovery facts a durable boot hands the server (chameleon_server does
/// this after durability::Manager::open()) so restarts are observable over
/// the wire: both STATS and HEALTH carry these fields.
struct RecoveryInfo {
  bool recovered = false;            ///< prior on-disk state was restored
  std::uint64_t recoveries_total = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t checkpoint_seq = 0;
  std::uint64_t last_recovery_unix_ms = 0;  ///< wall clock, for operators
  double last_recovery_seconds = 0.0;       ///< how long recovery took
};

/// Hook a distributed-mode node runtime installs to answer the membership
/// peer ops (kPlace, kPeerHealth) without the server depending on dist/.
/// Both calls run inline on an IO thread, so implementations must be fast,
/// non-blocking, and thread-safe. Returning false maps to kBadRequest.
class PeerHandler {
 public:
  virtual ~PeerHandler() = default;
  /// kPlace: `request` is a key body; fill `response` with a placement body.
  virtual bool place(std::span<const std::uint8_t> request,
                     std::vector<std::uint8_t>& response) = 0;
  /// kPeerHealth: `request` is the sender's peer-health body; renew its
  /// lease and fill `response` with this node's peer-health body.
  virtual bool peer_health(std::span<const std::uint8_t> request,
                           std::vector<std::uint8_t>& response) = 0;
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;     ///< 0 = ephemeral (read back via port())
  /// This process's node id in a multi-node deployment (docs/DISTRIBUTED.md);
  /// surfaced in STATS/HEALTH and echoed in WEAR_REPORT bodies.
  std::uint32_t node_id = 0;
  /// kSharded: shard worker threads under the store coordinator.
  /// kMutex: request-execution ThreadPool threads.
  std::uint32_t workers = 2;
  StoreMode store_mode = StoreMode::kSharded;
  /// IO (reactor) threads. >1 binds one SO_REUSEPORT accept socket per
  /// reactor and partitions sessions across them.
  std::uint32_t reactors = 1;
  /// kSharded: executor drain cadence (ops between drain fences while busy).
  std::uint32_t drain_batch = 64;
  /// Start in ServingState::kRecovering: listen and answer control ops
  /// (HEALTH/STATS/PING) immediately, but shed data ops with kRetryLater
  /// until set_serving() flips the state. A durable boot uses this so
  /// recovery time is probe-able downtime, not connection-refused darkness.
  bool start_recovering = false;
  AdmissionConfig admission;
  SlowRequestConfig slow;
  std::uint32_t max_payload = kDefaultMaxPayload;
  /// Sessions idle longer than this (no traffic, nothing in flight) are
  /// reaped. 0 disables reaping.
  Nanos idle_timeout = 60 * kSecond;
  /// stop(): maximum real time to wait for in-flight requests and pending
  /// responses before closing sessions anyway.
  Nanos drain_timeout = 5 * kSecond;
  /// Advance the balancer's virtual clock by one epoch every N executed data
  /// ops (0 = never), so wear balancing runs under served traffic.
  std::uint64_t epoch_every_ops = 10'000;
  ServiceFaultPlan faults;
};

/// Point-in-time counters (all monotone except sessions_open/inflight).
struct ServerStats {
  std::uint64_t accepted_total = 0;
  std::uint64_t sessions_open = 0;
  std::uint64_t sessions_closed_total = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t responses_total = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t protocol_errors_total = 0;
  std::uint64_t faults_injected_total = 0;
  std::uint64_t bytes_read_total = 0;
  std::uint64_t bytes_written_total = 0;
  std::uint64_t inflight = 0;
  std::uint64_t slow_requests_total = 0;  ///< kSvcSlowRequest events recorded
  std::uint64_t trace_dropped = 0;  ///< trace-ring events lost to wraparound
  /// Requests answered kDeadlineExceeded: shed on arrival (deadline already
  /// lapsed) plus shed at dequeue (deadline lapsed on the worker queue).
  std::uint64_t deadline_exceeded_total = 0;
  // Sharded store pipeline (zero in kMutex mode).
  std::uint64_t pipeline_jobs_total = 0;
  std::uint64_t pipeline_drains_total = 0;
  std::uint64_t pipeline_bypass_windows_total = 0;
  /// Acks held for a group-commit fsync (mutations gated on when_durable).
  std::uint64_t durable_gated_total = 0;
  double uptime_seconds = 0.0;      ///< since the last successful start()
  bool drained_clean = false;  ///< last drain finished inside drain_timeout
  ServingState state = ServingState::kServing;
};

class Server {
 public:
  /// `system` must outlive the server. Serving enables the payload plane on
  /// the first PUT (via kv::Client).
  Server(core::Chameleon& system, const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn the reactor threads and the store backend. Throws
  /// std::runtime_error on socket errors.
  void start();

  /// Actual bound port (differs from config when config.port == 0).
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return config_.host; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Async-signal-safe drain trigger (eventfd writes; callable from a signal
  /// handler). The reactor threads notice and start the graceful drain.
  void request_stop() noexcept;

  /// Block until every reactor finishes the drain, then stop the store
  /// backend, flush any durability-gated acks, and release every socket.
  /// Idempotent; safe to call concurrently.
  void wait();

  /// request_stop() + wait().
  void stop();

  ServerStats stats() const;
  const ServerConfig& config() const { return config_; }

  /// Leave ServingState::kRecovering and start accepting data ops. Safe to
  /// call from any thread; a no-op when already serving or draining.
  void set_serving();
  ServingState state() const {
    return static_cast<ServingState>(state_.load(std::memory_order_acquire));
  }

  /// Install the recovery facts reported by STATS and HEALTH. Call before
  /// set_serving() on a durable boot; callable from any thread.
  void set_recovery_info(const RecoveryInfo& info);
  RecoveryInfo recovery_info() const;

  /// Gate acks for journaled mutations on WAL group commit: a PUT/DELETE
  /// that appended WAL records is answered only once its records are
  /// fsynced (GroupCommit::when_durable). Call between durability
  /// Manager::open() and set_serving() on a durable boot; nullptr disables.
  /// `gc` must outlive the server's serving phase (it is flushed in wait()).
  void set_group_commit(durability::GroupCommit* gc) {
    group_commit_.store(gc, std::memory_order_release);
  }

  /// Install the distributed-mode hook that answers kPlace/kPeerHealth
  /// (normally a dist::NodeRuntime). `handler` must outlive the server's
  /// serving phase; nullptr (the default) answers both ops kBadRequest.
  void set_peer_handler(PeerHandler* handler) {
    peer_handler_.store(handler, std::memory_order_release);
  }

 private:
  struct Completion;

  /// Per-IO-thread state: epoll set, wake eventfd, accept socket, session
  /// table, deferred closes, output-buffer pool, and the completion queue
  /// store threads post into. Everything except `completions`/`wake_fd` is
  /// touched only by the owning IO thread.
  struct Reactor {
    std::size_t index = 0;
    int epoll_fd = -1;
    int wake_fd = -1;
    int listen_fd = -1;
    std::thread thread;
    std::map<int, std::shared_ptr<Session>> sessions;
    /// Fds removed from sessions this epoll batch, held open until the batch
    /// finishes so accept4 cannot recycle a number that stale queued events
    /// still reference.
    std::vector<int> deferred_close_fds;
    /// Session ids: index+1, index+1+reactors, ... — unique across reactors.
    std::uint64_t next_session_id = 0;
    BufferPool buffers;
    Xoshiro256 fault_rng{0x5eed};
    bool draining = false;
    std::chrono::steady_clock::time_point drain_deadline{};
    bool drained_clean = false;
    std::mutex completion_mutex;
    std::deque<Completion> completions;
  };

  struct Completion {
    std::shared_ptr<Session> session;
    Reactor* reactor = nullptr;  ///< owns the session; receives the post
    Frame response;
    Op op = Op::kPing;
    std::chrono::steady_clock::time_point admitted_at;
    /// Absolute deadline (receipt time + the frame's deadline_ms); the
    /// store backend sheds instead of executing once this passes.
    /// time_point::max() when the request carried no deadline.
    std::chrono::steady_clock::time_point deadline;
    std::uint64_t request_bytes = 0;
    std::uint64_t request_id = 0;
    /// Stage attribution, stamped along the way: decode/admission on the IO
    /// thread, queue/store-exec (with the WAL carve-out) on the store
    /// backend, completion/flush back on the IO thread. Never touched
    /// concurrently — ownership moves with the completion through the queue.
    obs::Span span;
  };
  struct MetricHandles {
    obs::Counter* requests[static_cast<std::size_t>(Op::kCount)] = {};
    obs::HistogramMetric* latency[static_cast<std::size_t>(Op::kCount)] = {};
    /// chameleon_svc_stage_seconds{op,stage}: resolved for data ops only.
    obs::HistogramMetric* stage[static_cast<std::size_t>(Op::kCount)]
                               [static_cast<std::size_t>(
                                   obs::SvcStage::kCount)] = {};
    obs::Counter* shed_session = nullptr;
    obs::Counter* shed_global = nullptr;
    obs::Counter* shed_deadline = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* sessions_opened = nullptr;
    obs::Counter* sessions_closed = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* durable_gated = nullptr;
    obs::Gauge* inflight = nullptr;
    bool resolved = false;
  };

  void open_reactor_sockets();
  void io_loop(Reactor& r);
  void accept_ready(Reactor& r);
  void on_readable(Reactor& r, const std::shared_ptr<Session>& session);
  /// Returns false when the frame tore the session down. `span` carries the
  /// decode stamp taken by on_readable.
  bool handle_frame(Reactor& r, const std::shared_ptr<Session>& session,
                    Frame frame, obs::Span span);
  Frame control_response(const Frame& request);
  /// The store half of a request: runs under store_mutex_ (kMutex) or on
  /// the pipeline coordinator (kSharded).
  Frame execute(const Frame& request);
  /// Stall/deadline-check/execute/ack-gate body shared by both backends.
  void run_request(Frame request, Nanos stall, Completion seed);
  void maybe_tick_epoch();
  /// Push a finished completion to its reactor; wakes the reactor's eventfd
  /// only on the queue's empty→non-empty transition. Any-thread safe.
  void post_completion(Completion&& c);
  void drain_completions(Reactor& r);
  void pump_out(Reactor& r, const std::shared_ptr<Session>& session);
  /// Takes its argument by value: callers often pass the shared_ptr stored
  /// in r.sessions itself, which the erase below would otherwise destroy
  /// while we still hold a reference to it.
  void close_session(Reactor& r, std::shared_ptr<Session> session);
  /// ::close the fds parked by close_session. Must run between epoll batches
  /// (and after the loop exits), never while a batch's events are still being
  /// dispatched — see close_session.
  void flush_deferred_closes(Reactor& r);
  void reap_idle(Reactor& r, std::chrono::steady_clock::time_point now);
  void update_epoll(Reactor& r, Session& session);
  std::string stats_json() const;
  std::string health_json() const;
  void note_request(Op op);
  void note_response(Op op, Nanos latency);
  void note_fault(const char* kind);
  /// Feed the finished span into the per-stage histograms and, when the
  /// request was slow or deterministically sampled, record the
  /// kSvcSlowRequest trace event with the full breakdown. IO thread only.
  void finalize_span(const Completion& c);

  core::Chameleon& system_;
  ServerConfig config_;
  MetricHandles metric_;

  std::uint16_t port_ = 0;

  std::vector<std::unique_ptr<Reactor>> reactors_;
  /// Hard cap on config.reactors (clamped in start()).
  static constexpr std::size_t kMaxReactors = 16;
  /// Wake eventfds mirrored into a fixed array of atomics so request_stop()
  /// stays async-signal-safe: no container traversal that wait() could be
  /// mutating when the signal lands. -1 = slot closed.
  std::array<std::atomic<int>, kMaxReactors> wake_fds_;
  std::atomic<std::size_t> reactor_count_{0};
  /// kMutex backend: request-execution pool + the coordinator mutex.
  std::unique_ptr<ThreadPool> pool_;
  std::mutex store_mutex_;
  /// kSharded backend: coordinator + shard executor (no store mutex).
  std::unique_ptr<StorePipeline> pipeline_;
  std::mutex lifecycle_mutex_;  ///< serializes wait()/cleanup

  AdmissionController admission_;

  std::atomic<durability::GroupCommit*> group_commit_{nullptr};
  std::atomic<PeerHandler*> peer_handler_{nullptr};

  /// Data ops since the last epoch tick; guarded by the active backend's
  /// serialization domain (store_mutex_ or the coordinator thread).
  std::uint64_t ops_since_epoch_ = 0;
  /// Last epoch observed by the store backend, republished for trace events
  /// recorded on the IO threads without store access.
  std::atomic<std::uint64_t> epoch_cache_{0};

  std::chrono::steady_clock::time_point start_time_{};

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  /// ServingState, readable from any thread (HEALTH/STATS render it).
  std::atomic<std::uint8_t> state_{
      static_cast<std::uint8_t>(ServingState::kServing)};
  mutable std::mutex recovery_mutex_;
  RecoveryInfo recovery_;

  // stats (atomics: read from any thread via stats())
  std::atomic<std::uint64_t> accepted_total_{0};
  std::atomic<std::uint64_t> sessions_closed_total_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> responses_total_{0};
  std::atomic<std::uint64_t> protocol_errors_total_{0};
  std::atomic<std::uint64_t> faults_injected_total_{0};
  std::atomic<std::uint64_t> bytes_read_total_{0};
  std::atomic<std::uint64_t> bytes_written_total_{0};
  std::atomic<std::uint64_t> sessions_open_{0};
  std::atomic<std::uint64_t> slow_requests_total_{0};
  std::atomic<std::uint64_t> deadline_exceeded_total_{0};
  std::atomic<std::uint64_t> durable_gated_total_{0};
  std::atomic<bool> drained_clean_{false};
};

/// Register a signal handler on each of `signals` that triggers `server`'s
/// graceful drain via request_stop() (async-signal-safe). One server at a
/// time; passing nullptr unregisters.
void drain_on_signals(Server* server, std::initializer_list<int> signals);

}  // namespace chameleon::svc
