// The sharded serving path's store backend: ONE coordinator thread owns
// every core::Chameleon call (so no global store mutex exists at all), and a
// sim::ShardExecutor fans the per-device flash work of independent servers
// out to shard worker threads — the PR-4 phase model carried into the live
// TCP path. Reactor threads submit closed-over requests into an MPSC queue;
// the coordinator executes their logical plans in arrival order, drains the
// executor every `drain_batch` jobs (and before going idle), and runs
// control-plane sections (balancer epochs, DIGEST) inside bypass windows
// behind a drain fence — exactly the sequential interleaving, which is what
// makes sharded serving digest-equivalent to mutex serving.
//
// The executor starts BYPASSED: a durable boot replays the WAL on the main
// thread before any job is submitted, and a bypassed executor is inert
// (OpScope/GroupScope fall back to the inline path), so replay needs no
// cross-thread coordination. The coordinator engages the executor when the
// first data job arrives.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "core/chameleon.hpp"
#include "sim/shard_executor.hpp"

namespace chameleon::svc {

struct StorePipelineOptions {
  std::size_t workers = 2;  ///< shard worker threads (>= 1)
  /// Executor drain cadence: jobs between drain fences while the queue is
  /// busy (the coordinator always drains before idling or a bypass window).
  std::size_t drain_batch = 64;
};

class StorePipeline {
 public:
  /// `system` must outlive the pipeline. Does not start any thread.
  StorePipeline(core::Chameleon& system, const StorePipelineOptions& options);
  ~StorePipeline();

  StorePipeline(const StorePipeline&) = delete;
  StorePipeline& operator=(const StorePipeline&) = delete;

  /// Create the shard executor (bypassed), attach it to the cluster, and
  /// spawn the coordinator thread.
  void start();

  /// Drain every queued job, run a final drain fence, detach the executor,
  /// and join. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Run `fn` on the coordinator thread with the executor engaged. `fn` must
  /// not throw (wrap store exceptions inside, the way Server::execute does).
  void submit(std::function<void()> fn);

  /// Run `fn` on the coordinator inside a bypass window: drain fence first,
  /// then `fn` fully inline (balancer epochs, digests, membership).
  void submit_bypass(std::function<void()> fn);

  /// Bypass window entered from WITHIN a running job (coordinator thread
  /// only): drain fence, bypass, `fn`, re-engage. This is how an epoch tick
  /// stays ordered exactly after the Nth data op instead of drifting behind
  /// whatever was already queued — the digest-equivalence tests depend on
  /// that ordering matching the mutex backend's.
  void bypass_inline(const std::function<void()>& fn);

  std::uint64_t jobs_executed() const {
    return jobs_executed_.load(std::memory_order_relaxed);
  }
  std::uint64_t drains() const {
    return drains_.load(std::memory_order_relaxed);
  }
  std::uint64_t bypass_windows() const {
    return bypass_windows_.load(std::memory_order_relaxed);
  }
  /// Shard-phase errors swallowed by the coordinator (should stay 0: fault
  /// injection forces inline execution, so shard closures cannot throw).
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

  std::size_t shard_workers() const { return options_.workers; }

 private:
  struct Job {
    std::function<void()> fn;
    bool bypass = false;
  };

  void coordinator_loop();
  void drain_if_dirty();

  core::Chameleon& system_;
  StorePipelineOptions options_;
  std::unique_ptr<sim::ShardExecutor> executor_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  std::thread thread_;
  std::atomic<bool> running_{false};

  // Coordinator-thread-only.
  bool engaged_ = false;
  std::size_t since_drain_ = 0;

  std::atomic<std::uint64_t> jobs_executed_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> bypass_windows_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace chameleon::svc
