#include "svc/store_pipeline.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace chameleon::svc {

StorePipeline::StorePipeline(core::Chameleon& system,
                             const StorePipelineOptions& options)
    : system_(system), options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.drain_batch == 0) options_.drain_batch = 1;
}

StorePipeline::~StorePipeline() { stop(); }

void StorePipeline::start() {
  if (running()) return;
  sim::ShardExecutor::Options opts;
  opts.workers = options_.workers;
  executor_ = std::make_unique<sim::ShardExecutor>(system_.cluster(), opts);
  // Bypassed until the first job: the durable-boot WAL replay runs on the
  // main thread with the executor attached but inert. The job-queue mutex
  // orders that replay before anything the coordinator does.
  executor_->set_bypassed(true);
  system_.cluster().attach_executor(executor_.get());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
  }
  engaged_ = false;
  since_drain_ = 0;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { coordinator_loop(); });
}

void StorePipeline::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_one();
  thread_.join();
  system_.cluster().attach_executor(nullptr);
  executor_.reset();
  running_.store(false, std::memory_order_release);
}

void StorePipeline::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Job{std::move(fn), false});
  }
  cv_.notify_one();
}

void StorePipeline::submit_bypass(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Job{std::move(fn), true});
  }
  cv_.notify_one();
}

void StorePipeline::bypass_inline(const std::function<void()>& fn) {
  drain_if_dirty();
  if (engaged_) executor_->set_bypassed(true);
  fn();
  if (engaged_) executor_->set_bypassed(false);
  bypass_windows_.fetch_add(1, std::memory_order_relaxed);
}

void StorePipeline::drain_if_dirty() {
  if (since_drain_ == 0) return;
  since_drain_ = 0;
  try {
    executor_->drain();
  } catch (const std::exception&) {
    // Shard closures cannot throw in serving mode (fault arming forces the
    // inline path), so this is purely defensive: count it, keep serving.
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  drains_.fetch_add(1, std::memory_order_relaxed);
}

void StorePipeline::coordinator_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) {
        if (stop_) break;
        // About to idle: nothing is waiting, so close out the deferred
        // device work now instead of letting tokens pile up unresolved.
        lock.unlock();
        drain_if_dirty();
        lock.lock();
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) break;  // stop requested and fully drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }

    if (job.bypass) {
      // Drain fence, then fully inline — the sequential interleaving for
      // control-plane work (balancer epoch, digest, membership).
      bypass_inline(job.fn);
    } else {
      if (!engaged_) {
        executor_->set_bypassed(false);
        engaged_ = true;
      }
      job.fn();
      if (++since_drain_ >= options_.drain_batch) drain_if_dirty();
    }
    jobs_executed_.fetch_add(1, std::memory_order_relaxed);
  }
  drain_if_dirty();
  // Leave the executor bypassed so post-stop store access (e.g. a final
  // checkpoint on the main thread) runs inline against a drained cluster.
  executor_->set_bypassed(true);
  engaged_ = false;
}

}  // namespace chameleon::svc
