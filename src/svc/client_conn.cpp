#include "svc/client_conn.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/faults.hpp"
#include "common/fnv.hpp"

namespace chameleon::svc {

namespace {

void set_io_timeout(int fd, Nanos timeout) {
  if (timeout <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout / kSecond);
  tv.tv_usec = static_cast<suseconds_t>((timeout % kSecond) / 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool retryable_status(Status s) {
  return s == Status::kRetryLater || s == Status::kShuttingDown;
}

}  // namespace

// --- ClientConn --------------------------------------------------------------

ClientConn::ClientConn(const ClientConfig& config)
    : config_(config), decoder_(config.max_payload) {}

ClientConn::~ClientConn() { close(); }

void ClientConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ClientConn::connect() {
  close();
  decoder_ = FrameDecoder(config_.max_payload);

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("svc client: socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  const std::string host =
      config_.host == "localhost" ? "127.0.0.1" : config_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("svc client: cannot parse host '" + config_.host +
                             "' (numeric IPv4 expected)");
  }
  const Nanos timeout = config_.retry.op_timeout > 0
                            ? config_.retry.op_timeout
                            : config_.default_io_timeout;
  set_io_timeout(fd, timeout);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw TransientFault(std::string("svc client: connect ") + host + ":" +
                         std::to_string(config_.port) + ": " +
                         std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
}

void ClientConn::send_all(const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int err = errno;
    close();
    throw TransientFault(std::string("svc client: send: ") +
                         std::strerror(err));
  }
}

Frame ClientConn::recv_frame() {
  Frame frame;
  for (;;) {
    const DecodeResult d = decoder_.next(frame);
    if (d == DecodeResult::kFrame) return frame;
    if (d != DecodeResult::kNeedMore) {
      close();
      throw std::runtime_error(
          std::string("svc client: malformed response frame: ") +
          decode_result_name(d));
    }
    std::uint8_t chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      decoder_.feed({chunk, static_cast<std::size_t>(n)});
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int err = n == 0 ? 0 : errno;
    close();
    if (n == 0) {
      throw TransientFault("svc client: connection closed by server");
    }
    if (err == EAGAIN || err == EWOULDBLOCK) {
      throw TransientFault("svc client: receive timeout");
    }
    throw TransientFault(std::string("svc client: recv: ") +
                         std::strerror(err));
  }
}

Frame ClientConn::call(Op op, std::vector<std::uint8_t> payload) {
  return call(op, std::move(payload), next_request_id_++, config_.deadline_ms);
}

Frame ClientConn::call(Op op, std::vector<std::uint8_t> payload,
                       std::uint64_t request_id, std::uint32_t deadline_ms) {
  if (!connected()) connect();
  Frame request{op, Status::kOk, request_id, std::move(payload)};
  request.deadline_ms = deadline_ms;
  scratch_.clear();
  encode_frame(request, scratch_);
  send_all(scratch_.data(), scratch_.size());
  Frame response = recv_frame();
  if (response.request_id != request.request_id || response.op != op) {
    close();
    throw std::runtime_error("svc client: response does not match request");
  }
  ++calls_;
  return response;
}

// --- ClientPool --------------------------------------------------------------

ClientPool::ClientPool(const ClientConfig& config, std::size_t size)
    : config_(config),
      size_(std::max<std::size_t>(1, size)),
      jitter_rng_(config.retry.seed) {
  if (config_.endpoints.empty()) return;
  // Multi-endpoint mode: one inner single-endpoint pool per endpoint plus a
  // routing ring over the endpoint node ids. The inner pools inherit every
  // knob except the endpoint list itself.
  ring_ = std::make_unique<cluster::HashRing>(
      0, std::max<std::uint32_t>(1, config_.ring_vnodes));
  for (const Endpoint& ep : config_.endpoints) {
    if (ring_->contains(ep.node_id)) {
      throw std::invalid_argument(
          "svc client: duplicate endpoint node id " +
          std::to_string(ep.node_id));
    }
    ClientConfig inner = config_;
    inner.endpoints.clear();
    inner.host = ep.host;
    inner.port = ep.port;
    members_.push_back(std::make_unique<ClientPool>(inner, size));
    member_node_ids_.push_back(ep.node_id);
    ring_->add_server(ep.node_id);
  }
}

std::vector<std::size_t> ClientPool::route_order(std::string_view key) const {
  // Ring-successor preference order of the key, translated from node ids
  // back to member indices. The ring is static for the pool's lifetime, so
  // the same key always walks endpoints in the same order — which is what
  // makes "the next replica-holding node" well-defined on failover.
  const std::vector<ServerId> ids =
      ring_->successors(cluster::key_point(key), members_.size());
  std::vector<std::size_t> order;
  order.reserve(ids.size());
  for (const ServerId id : ids) {
    for (std::size_t i = 0; i < member_node_ids_.size(); ++i) {
      if (member_node_ids_[i] == id) {
        order.push_back(i);
        break;
      }
    }
  }
  return order;
}

template <typename Fn>
Status ClientPool::with_failover(std::string_view key, Fn&& op) {
  const std::vector<std::size_t> order = route_order(key);
  bool saw_not_found = false;
  std::exception_ptr last_error;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) failovers_.fetch_add(1, std::memory_order_relaxed);
    try {
      const Status s = op(*members_[order[i]]);
      // kNotFound keeps walking: the first-choice endpoint may have missed
      // the write this pool is looking for, but a later replica holder may
      // have it. Everything else is a terminal answer from the cluster.
      if (s == Status::kNotFound) {
        saw_not_found = true;
        continue;
      }
      return s;
    } catch (const kv::RetriesExhausted&) {
      last_error = std::current_exception();
    } catch (const TransientFault&) {
      last_error = std::current_exception();
    }
  }
  if (saw_not_found) return Status::kNotFound;
  if (last_error) std::rethrow_exception(last_error);
  return Status::kError;  // unreachable: order is never empty
}

std::unique_ptr<ClientConn> ClientPool::acquire() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (!idle_.empty()) {
      auto conn = std::move(idle_.front());
      idle_.pop_front();
      ++outstanding_;
      return conn;
    }
    if (created_ < size_) {
      ++created_;
      ++outstanding_;
      return std::make_unique<ClientConn>(config_);
    }
    available_.wait(lock);
  }
}

void ClientPool::release(std::unique_ptr<ClientConn> conn) {
  {
    std::lock_guard lock(mutex_);
    --outstanding_;
    // Broken connections are still pooled: the next call() reconnects.
    idle_.push_back(std::move(conn));
  }
  available_.notify_one();
}

Nanos ClientPool::backoff_for(std::size_t attempt) {
  // Mirrors kv::Client::backoff_for: base * multiplier^(attempt-2), +/-
  // jitter, drawn from the pool's deterministic RNG.
  const auto& p = config_.retry;
  double wait = static_cast<double>(p.base_backoff);
  for (std::size_t i = 2; i < attempt; ++i) wait *= p.backoff_multiplier;
  double jitter = 0.0;
  {
    std::lock_guard lock(mutex_);
    jitter = (jitter_rng_.next_double() * 2.0 - 1.0) * p.jitter;
  }
  wait *= 1.0 + jitter;
  if (wait < 0.0) wait = 0.0;
  return static_cast<Nanos>(std::llround(wait));
}

Frame ClientPool::call(Op op, std::vector<std::uint8_t> payload) {
  // Multi-endpoint mode: non-key ops address the first endpoint. Key-routed
  // ops never reach here (put/get/remove route before calling).
  if (!members_.empty()) return members_[0]->call(op, std::move(payload));
  const std::size_t max_attempts = std::max<std::size_t>(1, config_.retry.max_attempts);
  // One id for the whole logical operation: every reconnect-and-replay
  // attempt re-sends the SAME request id, so the server (and anyone reading
  // traces) sees an idempotent replay, not a new operation.
  const std::uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const auto started = std::chrono::steady_clock::now();
  std::string last_error;
  std::size_t attempt = 1;
  for (; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      {
        std::lock_guard lock(mutex_);
        ++retries_;
      }
      const Nanos wait = backoff_for(attempt);
      if (wait > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(wait));
      }
      // The whole-operation budget bounds how long failover/replay may
      // stall this caller; the lapsed check sits after the backoff so a
      // sleep cannot push us past the deadline unnoticed.
      if (config_.retry.total_deadline > 0 &&
          std::chrono::steady_clock::now() - started >=
              std::chrono::nanoseconds(config_.retry.total_deadline)) {
        last_error += " (total deadline exhausted)";
        break;
      }
    }
    auto conn = acquire();
    try {
      const bool fresh = !conn->connected();
      if (fresh) {
        conn->connect();
        std::lock_guard lock(mutex_);
        ++reconnects_;
      }
      Frame response =
          conn->call(op, payload, request_id, config_.deadline_ms);  // copy
      release(std::move(conn));
      if (retryable_status(response.status)) {
        last_error = status_name(response.status);
        continue;
      }
      if (response.status == Status::kDeadlineExceeded) {
        // Terminal by design: the server shed it because the budget this
        // client granted lapsed; retrying would blow the budget further.
        std::lock_guard lock(mutex_);
        ++deadline_exceeded_;
      }
      return response;
    } catch (const TransientFault& fault) {
      last_error = fault.what();
      release(std::move(conn));
      continue;
    } catch (...) {
      release(std::move(conn));
      throw;
    }
  }
  throw kv::RetriesExhausted(op_name(op), attempt - 1, last_error);
}

Status ClientPool::put(std::string_view key,
                       std::span<const std::uint8_t> value) {
  if (!members_.empty()) {
    return with_failover(key, [&](ClientPool& m) { return m.put(key, value); });
  }
  std::vector<std::uint8_t> body;
  encode_put_body(key, value, body);
  const Frame response = call(Op::kPut, std::move(body));
  return response.status;
}

Status ClientPool::put(std::string_view key, std::string_view value) {
  return put(key,
             std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(value.data()),
                 value.size()));
}

Status ClientPool::get(std::string_view key,
                       std::vector<std::uint8_t>& value_out) {
  if (!members_.empty()) {
    return with_failover(key,
                         [&](ClientPool& m) { return m.get(key, value_out); });
  }
  std::vector<std::uint8_t> body;
  encode_key_body(key, body);
  Frame response = call(Op::kGet, std::move(body));
  if (response.status == Status::kOk) value_out = std::move(response.payload);
  return response.status;
}

Status ClientPool::remove(std::string_view key) {
  if (!members_.empty()) {
    return with_failover(key, [&](ClientPool& m) { return m.remove(key); });
  }
  std::vector<std::uint8_t> body;
  encode_key_body(key, body);
  return call(Op::kDelete, std::move(body)).status;
}

void ClientPool::ping() { call(Op::kPing, {}); }

std::string ClientPool::stats_json() {
  const Frame response = call(Op::kStats, {});
  return std::string(response.payload.begin(), response.payload.end());
}

std::string ClientPool::metrics_text() {
  const Frame response = call(Op::kMetrics, {});
  return std::string(response.payload.begin(), response.payload.end());
}

std::string ClientPool::digest() {
  const Frame response = call(Op::kDigest, {});
  return std::string(response.payload.begin(), response.payload.end());
}

std::string ClientPool::health_json() {
  // Single attempt, no retry loop: a health probe must report the server's
  // state *now*, and its caller (wait_serving, the chaos harness) owns the
  // polling cadence.
  if (!members_.empty()) return members_[0]->health_json();
  auto conn = acquire();
  try {
    Frame response = conn->call(
        Op::kHealth, {}, next_request_id_.fetch_add(1, std::memory_order_relaxed),
        0);
    release(std::move(conn));
    return std::string(response.payload.begin(), response.payload.end());
  } catch (...) {
    release(std::move(conn));
    throw;
  }
}

bool ClientPool::wait_serving(Nanos timeout, Nanos poll_interval) {
  if (!members_.empty()) {
    // Every endpoint must report serving before a multi-endpoint pool is
    // considered ready: harnesses use this to wait out a whole cluster's
    // startup. The total budget is shared across endpoints.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(timeout);
    for (auto& member : members_) {
      const Nanos remaining =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0 || !member->wait_serving(remaining, poll_interval)) {
        return false;
      }
    }
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(timeout);
  for (;;) {
    try {
      const std::string health = health_json();
      if (health.find("\"serving\":true") != std::string::npos) return true;
    } catch (const TransientFault&) {
      // Connection refused / reset: the server is mid-restart. Keep polling.
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(std::max<Nanos>(poll_interval, kMillisecond)));
  }
}

std::uint64_t ClientPool::retries_total() const {
  std::lock_guard lock(mutex_);
  return retries_;
}

std::uint64_t ClientPool::reconnects_total() const {
  std::lock_guard lock(mutex_);
  return reconnects_;
}

std::uint64_t ClientPool::deadline_exceeded_total() const {
  std::lock_guard lock(mutex_);
  return deadline_exceeded_;
}

}  // namespace chameleon::svc
