#include "svc/wire.hpp"

#include <cstring>

namespace chameleon::svc {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kGet: return "get";
    case Op::kPut: return "put";
    case Op::kDelete: return "delete";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kDigest: return "digest";
    case Op::kHealth: return "health";
    case Op::kCount: break;
  }
  return "unknown";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kRetryLater: return "retry_later";
    case Status::kBadRequest: return "bad_request";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kError: return "error";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kCount: break;
  }
  return "unknown";
}

const char* decode_result_name(DecodeResult r) {
  switch (r) {
    case DecodeResult::kNeedMore: return "need_more";
    case DecodeResult::kFrame: return "frame";
    case DecodeResult::kBadMagic: return "bad_magic";
    case DecodeResult::kBadVersion: return "bad_version";
    case DecodeResult::kBadOp: return "bad_op";
    case DecodeResult::kBadStatus: return "bad_status";
    case DecodeResult::kBadReserved: return "bad_reserved";
    case DecodeResult::kOversized: return "oversized";
    case DecodeResult::kBadCrc: return "bad_crc";
  }
  return "unknown";
}

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + kHeaderBytes + frame.payload.size());
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(frame.op));
  out.push_back(static_cast<std::uint8_t>(frame.status));
  out.push_back(0);  // reserved
  put_u64(out, frame.request_id);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  put_u32(out, frame.deadline_ms);
  put_u32(out, 0);  // reserved
  put_u32(out, crc32c(frame.payload));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  encode_frame(frame, out);
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  if (error_.has_value()) return;  // poisoned: drop input
  // Compact once the consumed prefix dominates, so the buffer stays bounded
  // by one frame plus one read's worth of bytes.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

DecodeResult FrameDecoder::next(Frame& out) {
  if (error_.has_value()) return *error_;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderBytes) return DecodeResult::kNeedMore;
  const std::uint8_t* h = buffer_.data() + consumed_;

  // Header validation runs on the first 32 bytes alone, so a hostile length
  // field is rejected before any payload is awaited or buffered.
  if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
    return poison(DecodeResult::kBadMagic);
  }
  if (h[4] != kWireVersion) return poison(DecodeResult::kBadVersion);
  if (h[5] >= static_cast<std::uint8_t>(Op::kCount)) {
    return poison(DecodeResult::kBadOp);
  }
  if (h[6] >= static_cast<std::uint8_t>(Status::kCount)) {
    return poison(DecodeResult::kBadStatus);
  }
  if (h[7] != 0) return poison(DecodeResult::kBadReserved);
  const std::uint32_t len = get_u32(h + 16);
  if (len > max_payload_) return poison(DecodeResult::kOversized);
  if (get_u32(h + 24) != 0) return poison(DecodeResult::kBadReserved);

  if (avail < kHeaderBytes + len) return DecodeResult::kNeedMore;
  const std::uint8_t* body = h + kHeaderBytes;
  if (crc32c({body, len}) != get_u32(h + 28)) {
    return poison(DecodeResult::kBadCrc);
  }

  out.op = static_cast<Op>(h[5]);
  out.status = static_cast<Status>(h[6]);
  out.request_id = get_u64(h + 8);
  out.deadline_ms = get_u32(h + 20);
  out.payload.assign(body, body + len);
  consumed_ += kHeaderBytes + len;
  ++frames_decoded_;
  return DecodeResult::kFrame;
}

void encode_put_body(std::string_view key, std::span<const std::uint8_t> value,
                     std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 8 + key.size() + value.size());
  put_u32(out, static_cast<std::uint32_t>(key.size()));
  out.insert(out.end(), key.begin(), key.end());
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

bool decode_put_body(std::span<const std::uint8_t> payload, PutBody& out) {
  const std::uint8_t* p = payload.data();
  std::size_t remaining = payload.size();
  if (remaining < 4) return false;
  const std::uint32_t key_len = get_u32(p);
  p += 4;
  remaining -= 4;
  if (key_len == 0 || key_len > kMaxKeyBytes || key_len > remaining) {
    return false;
  }
  out.key.assign(reinterpret_cast<const char*>(p), key_len);
  p += key_len;
  remaining -= key_len;
  if (remaining < 4) return false;
  const std::uint32_t value_len = get_u32(p);
  p += 4;
  remaining -= 4;
  if (value_len != remaining) return false;  // trailing bytes are an error
  out.value.assign(p, p + value_len);
  return true;
}

void encode_key_body(std::string_view key, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 4 + key.size());
  put_u32(out, static_cast<std::uint32_t>(key.size()));
  out.insert(out.end(), key.begin(), key.end());
}

bool decode_key_body(std::span<const std::uint8_t> payload, std::string& out) {
  if (payload.size() < 4) return false;
  const std::uint32_t key_len = get_u32(payload.data());
  if (key_len == 0 || key_len > kMaxKeyBytes) return false;
  if (payload.size() != 4 + static_cast<std::size_t>(key_len)) return false;
  out.assign(reinterpret_cast<const char*>(payload.data() + 4), key_len);
  return true;
}

}  // namespace chameleon::svc
