#include "svc/wire.hpp"

#include <cstring>

namespace chameleon::svc {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kGet: return "get";
    case Op::kPut: return "put";
    case Op::kDelete: return "delete";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kDigest: return "digest";
    case Op::kHealth: return "health";
    case Op::kPlace: return "place";
    case Op::kReplicate: return "replicate";
    case Op::kStripeWrite: return "stripe_write";
    case Op::kPeerHealth: return "peer_health";
    case Op::kWearReport: return "wear_report";
    case Op::kCount: break;
  }
  return "unknown";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kRetryLater: return "retry_later";
    case Status::kBadRequest: return "bad_request";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kError: return "error";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kCount: break;
  }
  return "unknown";
}

const char* decode_result_name(DecodeResult r) {
  switch (r) {
    case DecodeResult::kNeedMore: return "need_more";
    case DecodeResult::kFrame: return "frame";
    case DecodeResult::kBadMagic: return "bad_magic";
    case DecodeResult::kBadVersion: return "bad_version";
    case DecodeResult::kBadOp: return "bad_op";
    case DecodeResult::kBadStatus: return "bad_status";
    case DecodeResult::kBadReserved: return "bad_reserved";
    case DecodeResult::kOversized: return "oversized";
    case DecodeResult::kBadCrc: return "bad_crc";
  }
  return "unknown";
}

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + kHeaderBytes + frame.payload.size());
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(frame.op));
  out.push_back(static_cast<std::uint8_t>(frame.status));
  out.push_back(0);  // reserved
  put_u64(out, frame.request_id);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  put_u32(out, frame.deadline_ms);
  put_u32(out, 0);  // reserved
  put_u32(out, crc32c(frame.payload));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  encode_frame(frame, out);
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  if (error_.has_value()) return;  // poisoned: drop input
  // Compact once the consumed prefix dominates, so the buffer stays bounded
  // by one frame plus one read's worth of bytes.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

DecodeResult FrameDecoder::next(Frame& out) {
  if (error_.has_value()) return *error_;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderBytes) return DecodeResult::kNeedMore;
  const std::uint8_t* h = buffer_.data() + consumed_;

  // Header validation runs on the first 32 bytes alone, so a hostile length
  // field is rejected before any payload is awaited or buffered.
  if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
    return poison(DecodeResult::kBadMagic);
  }
  if (h[4] != kWireVersion) return poison(DecodeResult::kBadVersion);
  if (h[5] >= static_cast<std::uint8_t>(Op::kCount)) {
    return poison(DecodeResult::kBadOp);
  }
  if (h[6] >= static_cast<std::uint8_t>(Status::kCount)) {
    return poison(DecodeResult::kBadStatus);
  }
  if (h[7] != 0) return poison(DecodeResult::kBadReserved);
  const std::uint32_t len = get_u32(h + 16);
  if (len > max_payload_) return poison(DecodeResult::kOversized);
  if (get_u32(h + 24) != 0) return poison(DecodeResult::kBadReserved);

  if (avail < kHeaderBytes + len) return DecodeResult::kNeedMore;
  const std::uint8_t* body = h + kHeaderBytes;
  if (crc32c({body, len}) != get_u32(h + 28)) {
    return poison(DecodeResult::kBadCrc);
  }

  out.op = static_cast<Op>(h[5]);
  out.status = static_cast<Status>(h[6]);
  out.request_id = get_u64(h + 8);
  out.deadline_ms = get_u32(h + 20);
  out.payload.assign(body, body + len);
  consumed_ += kHeaderBytes + len;
  ++frames_decoded_;
  return DecodeResult::kFrame;
}

void encode_put_body(std::string_view key, std::span<const std::uint8_t> value,
                     std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 8 + key.size() + value.size());
  put_u32(out, static_cast<std::uint32_t>(key.size()));
  out.insert(out.end(), key.begin(), key.end());
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

bool decode_put_body(std::span<const std::uint8_t> payload, PutBody& out) {
  const std::uint8_t* p = payload.data();
  std::size_t remaining = payload.size();
  if (remaining < 4) return false;
  const std::uint32_t key_len = get_u32(p);
  p += 4;
  remaining -= 4;
  if (key_len == 0 || key_len > kMaxKeyBytes || key_len > remaining) {
    return false;
  }
  out.key.assign(reinterpret_cast<const char*>(p), key_len);
  p += key_len;
  remaining -= key_len;
  if (remaining < 4) return false;
  const std::uint32_t value_len = get_u32(p);
  p += 4;
  remaining -= 4;
  if (value_len != remaining) return false;  // trailing bytes are an error
  out.value.assign(p, p + value_len);
  return true;
}

void encode_key_body(std::string_view key, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 4 + key.size());
  put_u32(out, static_cast<std::uint32_t>(key.size()));
  out.insert(out.end(), key.begin(), key.end());
}

bool decode_key_body(std::span<const std::uint8_t> payload, std::string& out) {
  if (payload.size() < 4) return false;
  const std::uint32_t key_len = get_u32(payload.data());
  if (key_len == 0 || key_len > kMaxKeyBytes) return false;
  if (payload.size() != 4 + static_cast<std::size_t>(key_len)) return false;
  out.assign(reinterpret_cast<const char*>(payload.data() + 4), key_len);
  return true;
}

// --- peer-op body codecs ---------------------------------------------------

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

/// Bounded cursor over a payload: every read checks remaining bytes first.
struct Cursor {
  const std::uint8_t* p;
  std::size_t remaining;

  explicit Cursor(std::span<const std::uint8_t> payload)
      : p(payload.data()), remaining(payload.size()) {}

  bool u16(std::uint16_t& out) {
    if (remaining < 2) return false;
    out = get_u16(p);
    p += 2;
    remaining -= 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (remaining < 4) return false;
    out = get_u32(p);
    p += 4;
    remaining -= 4;
    return true;
  }
  bool u64(std::uint64_t& out) {
    if (remaining < 8) return false;
    out = get_u64(p);
    p += 8;
    remaining -= 8;
    return true;
  }
  bool bytes(std::size_t n, const std::uint8_t*& out) {
    if (remaining < n) return false;
    out = p;
    p += n;
    remaining -= n;
    return true;
  }
};

bool read_key(Cursor& c, std::string& out) {
  std::uint32_t key_len = 0;
  if (!c.u32(key_len)) return false;
  if (key_len == 0 || key_len > kMaxKeyBytes) return false;
  const std::uint8_t* kp = nullptr;
  if (!c.bytes(key_len, kp)) return false;
  out.assign(reinterpret_cast<const char*>(kp), key_len);
  return true;
}

constexpr std::size_t kShardMetaBytes = 2 + 2 + 4 + 8 + 1 + 8 + 4;

void put_shard_meta(std::vector<std::uint8_t>& out, const ShardMeta& meta) {
  put_u16(out, meta.k);
  put_u16(out, meta.m);
  put_u32(out, meta.index);
  put_u64(out, meta.version);
  out.push_back(meta.flags);
  put_u64(out, meta.stripe_len);
  put_u32(out, meta.stripe_crc);
}

bool read_shard_meta(Cursor& c, ShardMeta& meta) {
  const std::uint8_t* fp = nullptr;
  if (!c.u16(meta.k) || !c.u16(meta.m) || !c.u32(meta.index) ||
      !c.u64(meta.version) || !c.bytes(1, fp)) {
    return false;
  }
  meta.flags = *fp;
  if (!c.u64(meta.stripe_len) || !c.u32(meta.stripe_crc)) return false;
  // Geometry sanity: at least one data shard, index within the stripe, and a
  // stripe that cannot exceed the frame ceiling (shards are ~len/k each, so
  // a hostile stripe_len would otherwise promise unbounded reconstruction).
  if (meta.k == 0) return false;
  if (meta.index >= static_cast<std::uint32_t>(meta.k) + meta.m) return false;
  if (meta.stripe_len > kDefaultMaxPayload) return false;
  if ((meta.flags & ~kShardFlagTombstone) != 0) return false;
  if ((meta.flags & kShardFlagTombstone) != 0 && meta.stripe_len != 0) {
    return false;
  }
  return true;
}

}  // namespace

void encode_replicate_body(const ReplicateBody& body,
                           std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 12 + body.key.size() + body.value.size());
  put_u32(out, body.origin_node);
  put_u32(out, static_cast<std::uint32_t>(body.key.size()));
  out.insert(out.end(), body.key.begin(), body.key.end());
  put_u32(out, static_cast<std::uint32_t>(body.value.size()));
  out.insert(out.end(), body.value.begin(), body.value.end());
}

bool decode_replicate_body(std::span<const std::uint8_t> payload,
                           ReplicateBody& out) {
  Cursor c(payload);
  if (!c.u32(out.origin_node)) return false;
  if (!read_key(c, out.key)) return false;
  std::uint32_t value_len = 0;
  if (!c.u32(value_len)) return false;
  if (value_len != c.remaining) return false;  // trailing bytes are an error
  out.value.assign(c.p, c.p + value_len);
  return true;
}

void encode_stripe_shard_body(const StripeShardBody& body,
                              std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 8 + body.key.size() + kShardMetaBytes +
              body.shard.size());
  put_u32(out, body.origin_node);
  put_u32(out, static_cast<std::uint32_t>(body.key.size()));
  out.insert(out.end(), body.key.begin(), body.key.end());
  put_shard_meta(out, body.meta);
  out.insert(out.end(), body.shard.begin(), body.shard.end());
}

bool decode_stripe_shard_body(std::span<const std::uint8_t> payload,
                              StripeShardBody& out) {
  Cursor c(payload);
  if (!c.u32(out.origin_node)) return false;
  if (!read_key(c, out.key)) return false;
  if (!read_shard_meta(c, out.meta)) return false;
  out.shard.assign(c.p, c.p + c.remaining);  // shard bytes run to the end
  return true;
}

void encode_shard_blob(const ShardMeta& meta,
                       std::span<const std::uint8_t> shard,
                       std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + kShardMetaBytes + shard.size());
  put_shard_meta(out, meta);
  out.insert(out.end(), shard.begin(), shard.end());
}

bool decode_shard_blob(std::span<const std::uint8_t> blob, ShardMeta& meta,
                       std::vector<std::uint8_t>& shard) {
  Cursor c(blob);
  if (!read_shard_meta(c, meta)) return false;
  shard.assign(c.p, c.p + c.remaining);
  return true;
}

void encode_replica_blob(std::uint64_t version, bool tombstone,
                         std::span<const std::uint8_t> value,
                         std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 9 + value.size());
  out.push_back(tombstone ? kReplicaFlagTombstone : 0);
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(version >> shift));
  }
  out.insert(out.end(), value.begin(), value.end());
}

bool decode_replica_blob(std::span<const std::uint8_t> blob,
                         ReplicaBlob& out) {
  if (blob.size() < 9) return false;
  const std::uint8_t flags = blob[0];
  if ((flags & ~kReplicaFlagTombstone) != 0) return false;
  out.tombstone = (flags & kReplicaFlagTombstone) != 0;
  out.version = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    out.version |= static_cast<std::uint64_t>(blob[1 + i]) << (8 * i);
  }
  if (out.tombstone && blob.size() != 9) return false;
  out.value.assign(blob.begin() + 9, blob.end());
  return true;
}

std::string shard_key(std::string_view key, std::uint32_t index) {
  std::string out;
  out.reserve(key.size() + 8);
  out.push_back('\x01');
  out.push_back('s');
  out += std::to_string(index);
  out.push_back('\x01');
  out += key;
  return out;
}

void encode_placement_body(const PlacementBody& body,
                           std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 12 + 4 * body.nodes.size());
  put_u64(out, body.view_version);
  put_u32(out, static_cast<std::uint32_t>(body.nodes.size()));
  for (std::uint32_t id : body.nodes) put_u32(out, id);
}

bool decode_placement_body(std::span<const std::uint8_t> payload,
                           PlacementBody& out) {
  Cursor c(payload);
  if (!c.u64(out.view_version)) return false;
  std::uint32_t count = 0;
  if (!c.u32(count)) return false;
  if (c.remaining != 4 * static_cast<std::size_t>(count)) return false;
  out.nodes.clear();
  out.nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t id = 0;
    c.u32(id);  // length pre-validated above
    out.nodes.push_back(id);
  }
  return true;
}

void encode_peer_health_body(const PeerHealthBody& body,
                             std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 13);
  put_u32(out, body.node_id);
  out.push_back(body.state);
  put_u64(out, body.view_version);
}

bool decode_peer_health_body(std::span<const std::uint8_t> payload,
                             PeerHealthBody& out) {
  Cursor c(payload);
  if (!c.u32(out.node_id)) return false;
  const std::uint8_t* sp = nullptr;
  if (!c.bytes(1, sp)) return false;
  out.state = *sp;
  if (out.state > 2) return false;
  if (!c.u64(out.view_version)) return false;
  return c.remaining == 0;
}

void encode_wear_report_body(const WearReportBody& body,
                             std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 24 + 8 * body.server_erases.size());
  put_u32(out, body.node_id);
  put_u64(out, body.epoch);
  put_u64(out, body.total_erases);
  put_u32(out, static_cast<std::uint32_t>(body.server_erases.size()));
  for (std::uint64_t e : body.server_erases) put_u64(out, e);
}

bool decode_wear_report_body(std::span<const std::uint8_t> payload,
                             WearReportBody& out) {
  Cursor c(payload);
  if (!c.u32(out.node_id)) return false;
  if (!c.u64(out.epoch)) return false;
  if (!c.u64(out.total_erases)) return false;
  std::uint32_t count = 0;
  if (!c.u32(count)) return false;
  if (c.remaining != 8 * static_cast<std::size_t>(count)) return false;
  out.server_erases.clear();
  out.server_erases.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t e = 0;
    c.u64(e);
    out.server_erases.push_back(e);
  }
  return true;
}

}  // namespace chameleon::svc
