// Client side of the svc wire protocol: a blocking request/response
// connection (ClientConn) and a thread-safe connection pool (ClientPool)
// that layers kv::RetryPolicy semantics on top — jittered exponential
// backoff, transparent reconnect on broken connections, and retry of
// kRetryLater/kShuttingDown responses until the attempt budget runs out
// (then kv::RetriesExhausted, matching the in-process client's contract).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "kv/client.hpp"
#include "svc/wire.hpp"

namespace chameleon::svc {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Backoff/attempt budget, reusing the in-process client's policy type.
  /// op_timeout (when nonzero) becomes the per-call socket send/recv timeout.
  kv::RetryPolicy retry;
  std::uint32_t max_payload = kDefaultMaxPayload;
  /// Socket recv/send timeout when retry.op_timeout == 0 (0 = no timeout).
  Nanos default_io_timeout = 10 * kSecond;
  /// Deadline budget stamped into every request frame, in milliseconds
  /// (wire header field; 0 = no deadline). The server sheds requests whose
  /// budget lapsed — on arrival and again at worker dequeue — answering
  /// kDeadlineExceeded, which the pool treats as terminal (no retry).
  std::uint32_t deadline_ms = 0;
};

/// One blocking connection. Not thread-safe; one outstanding request at a
/// time. A connection that sees an IO error or a response that does not
/// match the outstanding request id closes itself and throws.
class ClientConn {
 public:
  explicit ClientConn(const ClientConfig& config);
  ~ClientConn();
  ClientConn(const ClientConn&) = delete;
  ClientConn& operator=(const ClientConn&) = delete;

  /// Connect (blocking). Throws TransientFault when the server is
  /// unreachable, std::runtime_error on configuration errors.
  void connect();
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request and block for its response. Throws TransientFault on
  /// connection loss/timeouts (the connection is closed), std::runtime_error
  /// on protocol violations (mismatched id, malformed frame).
  Frame call(Op op, std::vector<std::uint8_t> payload);

  /// Same, but with a caller-chosen request id and explicit deadline. The
  /// pool uses this for failover: a logical operation keeps ONE id across
  /// reconnect-and-replay attempts, so a replayed idempotent write is
  /// recognizably the same operation in traces and server logs.
  Frame call(Op op, std::vector<std::uint8_t> payload,
             std::uint64_t request_id, std::uint32_t deadline_ms);

  std::uint64_t calls() const { return calls_; }

 private:
  ClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t calls_ = 0;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> scratch_;

  void send_all(const std::uint8_t* data, std::size_t len);
  Frame recv_frame();
};

/// Thread-safe pool of ClientConns with retry/reconnect. acquire() hands out
/// idle connections, creating up to `size` of them on demand; callers past
/// the cap block until a connection is released.
class ClientPool {
 public:
  ClientPool(const ClientConfig& config, std::size_t size = 4);

  /// Store `value` under `key`. Returns the terminal status (kOk, or an
  /// error status the server reported). Retries kRetryLater/kShuttingDown
  /// and broken connections per the policy; throws kv::RetriesExhausted when
  /// the budget runs out.
  Status put(std::string_view key, std::span<const std::uint8_t> value);
  Status put(std::string_view key, std::string_view value);

  /// Fetch `key` into `value_out`. kNotFound is terminal (no retry).
  Status get(std::string_view key, std::vector<std::uint8_t>& value_out);

  Status remove(std::string_view key);

  void ping();
  std::string stats_json();
  std::string metrics_text();
  /// Cluster state fingerprint as 16 lowercase hex chars (Op::kDigest).
  std::string digest();

  /// Readiness JSON from the HEALTH op (answered inline in every serving
  /// state, including mid-recovery). One attempt, no retry loop.
  std::string health_json();

  /// Block until the server reports `"serving":true` or the timeout lapses.
  /// Polls HEALTH (reconnecting as needed) every `poll_interval`; survives
  /// the connection-refused window while a killed server restarts. Returns
  /// true once serving. This is how harnesses wait out recovery instead of
  /// sleeping a guessed duration.
  bool wait_serving(Nanos timeout, Nanos poll_interval = 20 * kMillisecond);

  /// Raw retried call: returns the first non-retryable response.
  Frame call(Op op, std::vector<std::uint8_t> payload);

  std::uint64_t retries_total() const;
  std::uint64_t reconnects_total() const;
  std::uint64_t deadline_exceeded_total() const;
  const ClientConfig& config() const { return config_; }

 private:
  struct Lease;
  std::unique_ptr<ClientConn> acquire();
  void release(std::unique_ptr<ClientConn> conn);
  Nanos backoff_for(std::size_t attempt);

  ClientConfig config_;
  std::size_t size_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<std::unique_ptr<ClientConn>> idle_;
  std::size_t outstanding_ = 0;  ///< connections currently leased
  std::size_t created_ = 0;
  Xoshiro256 jitter_rng_;
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  /// Pool-level id source: a logical operation draws one id here and keeps
  /// it across every retry/reconnect/replay attempt (idempotent failover).
  std::atomic<std::uint64_t> next_request_id_{1};
};

}  // namespace chameleon::svc
