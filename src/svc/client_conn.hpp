// Client side of the svc wire protocol: a blocking request/response
// connection (ClientConn) and a thread-safe connection pool (ClientPool)
// that layers kv::RetryPolicy semantics on top — jittered exponential
// backoff, transparent reconnect on broken connections, and retry of
// kRetryLater/kShuttingDown responses until the attempt budget runs out
// (then kv::RetriesExhausted, matching the in-process client's contract).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "kv/client.hpp"
#include "svc/wire.hpp"

namespace chameleon::svc {

/// One addressable server in a multi-endpoint pool (docs/DISTRIBUTED.md).
struct Endpoint {
  std::uint32_t node_id = 0;  ///< ring position; must be unique in the pool
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Multi-endpoint mode (ignored when empty): key-routed ops (put/get/
  /// remove) pick an endpoint by hash-ring successor order of the key and
  /// fail over to the next endpoint when one is unreachable or, for GET,
  /// answers kNotFound (the next replica-holding node may have it). host/
  /// port above are ignored when endpoints are set.
  std::vector<Endpoint> endpoints;
  /// Virtual nodes per endpoint on the routing ring.
  std::uint32_t ring_vnodes = 64;
  /// Backoff/attempt budget, reusing the in-process client's policy type.
  /// op_timeout (when nonzero) becomes the per-call socket send/recv timeout.
  kv::RetryPolicy retry;
  std::uint32_t max_payload = kDefaultMaxPayload;
  /// Socket recv/send timeout when retry.op_timeout == 0 (0 = no timeout).
  Nanos default_io_timeout = 10 * kSecond;
  /// Deadline budget stamped into every request frame, in milliseconds
  /// (wire header field; 0 = no deadline). The server sheds requests whose
  /// budget lapsed — on arrival and again at worker dequeue — answering
  /// kDeadlineExceeded, which the pool treats as terminal (no retry).
  std::uint32_t deadline_ms = 0;
};

/// One blocking connection. Not thread-safe; one outstanding request at a
/// time. A connection that sees an IO error or a response that does not
/// match the outstanding request id closes itself and throws.
class ClientConn {
 public:
  explicit ClientConn(const ClientConfig& config);
  ~ClientConn();
  ClientConn(const ClientConn&) = delete;
  ClientConn& operator=(const ClientConn&) = delete;

  /// Connect (blocking). Throws TransientFault when the server is
  /// unreachable, std::runtime_error on configuration errors.
  void connect();
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request and block for its response. Throws TransientFault on
  /// connection loss/timeouts (the connection is closed), std::runtime_error
  /// on protocol violations (mismatched id, malformed frame).
  Frame call(Op op, std::vector<std::uint8_t> payload);

  /// Same, but with a caller-chosen request id and explicit deadline. The
  /// pool uses this for failover: a logical operation keeps ONE id across
  /// reconnect-and-replay attempts, so a replayed idempotent write is
  /// recognizably the same operation in traces and server logs.
  Frame call(Op op, std::vector<std::uint8_t> payload,
             std::uint64_t request_id, std::uint32_t deadline_ms);

  std::uint64_t calls() const { return calls_; }

 private:
  ClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t calls_ = 0;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> scratch_;

  void send_all(const std::uint8_t* data, std::size_t len);
  Frame recv_frame();
};

/// Thread-safe pool of ClientConns with retry/reconnect. acquire() hands out
/// idle connections, creating up to `size` of them on demand; callers past
/// the cap block until a connection is released.
///
/// With config.endpoints set (>= 1 entries) the pool becomes a routing tier:
/// one inner single-endpoint pool per endpoint, key-routed ops walk the
/// ring's successor order for the key and fail over across endpoints, and
/// non-key ops (ping/stats/metrics/digest/health/call) address the first
/// endpoint. Replication itself is the server/router side's job — the pool
/// only *finds* the data (docs/DISTRIBUTED.md).
class ClientPool {
 public:
  ClientPool(const ClientConfig& config, std::size_t size = 4);

  /// Store `value` under `key`. Returns the terminal status (kOk, or an
  /// error status the server reported). Retries kRetryLater/kShuttingDown
  /// and broken connections per the policy; throws kv::RetriesExhausted when
  /// the budget runs out.
  Status put(std::string_view key, std::span<const std::uint8_t> value);
  Status put(std::string_view key, std::string_view value);

  /// Fetch `key` into `value_out`. kNotFound is terminal (no retry).
  Status get(std::string_view key, std::vector<std::uint8_t>& value_out);

  Status remove(std::string_view key);

  void ping();
  std::string stats_json();
  std::string metrics_text();
  /// Cluster state fingerprint as 16 lowercase hex chars (Op::kDigest).
  std::string digest();

  /// Readiness JSON from the HEALTH op (answered inline in every serving
  /// state, including mid-recovery). One attempt, no retry loop.
  std::string health_json();

  /// Block until the server reports `"serving":true` or the timeout lapses.
  /// Polls HEALTH (reconnecting as needed) every `poll_interval`; survives
  /// the connection-refused window while a killed server restarts. Returns
  /// true once serving. This is how harnesses wait out recovery instead of
  /// sleeping a guessed duration. Multi-endpoint: true once EVERY endpoint
  /// reports serving (the harness-startup semantic).
  bool wait_serving(Nanos timeout, Nanos poll_interval = 20 * kMillisecond);

  /// Raw retried call: returns the first non-retryable response.
  Frame call(Op op, std::vector<std::uint8_t> payload);

  std::uint64_t retries_total() const;
  std::uint64_t reconnects_total() const;
  std::uint64_t deadline_exceeded_total() const;
  /// Multi-endpoint: key-routed ops that moved past the first-choice
  /// endpoint (unreachable, or GET kNotFound continuing to a replica).
  std::uint64_t failovers_total() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  /// Multi-endpoint: the inner single-endpoint pool at `index` (the order
  /// of config.endpoints). Single-endpoint pools have none.
  std::size_t endpoint_count() const { return members_.size(); }
  ClientPool& endpoint_pool(std::size_t index) { return *members_[index]; }
  const ClientConfig& config() const { return config_; }

 private:
  struct Lease;
  std::unique_ptr<ClientConn> acquire();
  void release(std::unique_ptr<ClientConn> conn);
  Nanos backoff_for(std::size_t attempt);
  /// Endpoint indices in ring-successor preference order for `key`.
  std::vector<std::size_t> route_order(std::string_view key) const;
  /// Run `op` against each endpoint in `order` until one yields a terminal
  /// answer; counts failovers past index 0.
  template <typename Fn>
  Status with_failover(std::string_view key, Fn&& op);

  ClientConfig config_;
  std::size_t size_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<std::unique_ptr<ClientConn>> idle_;
  std::size_t outstanding_ = 0;  ///< connections currently leased
  std::size_t created_ = 0;
  Xoshiro256 jitter_rng_;
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  /// Pool-level id source: a logical operation draws one id here and keeps
  /// it across every retry/reconnect/replay attempt (idempotent failover).
  std::atomic<std::uint64_t> next_request_id_{1};

  // Multi-endpoint mode (empty/unused otherwise).
  std::vector<std::unique_ptr<ClientPool>> members_;  ///< one per endpoint
  std::unique_ptr<cluster::HashRing> ring_;
  std::vector<std::uint32_t> member_node_ids_;  ///< index -> node id
  std::atomic<std::uint64_t> failovers_{0};
};

}  // namespace chameleon::svc
