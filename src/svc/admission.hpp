// Admission control / backpressure for the service layer: a bounded global
// in-flight window plus a per-session credit window. A request that finds no
// room is *shed* — answered immediately with Status::kRetryLater instead of
// queueing unboundedly — so overload degrades into client-visible 429s with
// bounded server memory, never into an ever-growing queue (docs/SERVICE.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace chameleon::svc {

struct AdmissionConfig {
  /// Requests executing or queued on workers, across all sessions.
  std::size_t max_inflight = 256;
  /// Outstanding (admitted, unanswered) requests one session may pipeline.
  std::size_t session_credits = 64;
};

class AdmissionController {
 public:
  enum class Decision {
    kAdmit,        ///< run it; caller must release() when the response is out
    kShedSession,  ///< session exhausted its credit window
    kShedGlobal,   ///< cluster-wide in-flight window is full
    kShedDeadline, ///< the request's deadline already lapsed on arrival
  };

  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  /// Try to admit one request from a session with `session_inflight`
  /// requests already outstanding. A request whose deadline has already
  /// lapsed (`deadline_expired`) is shed first — it consumes neither a
  /// session credit nor a global slot, because servicing it late helps
  /// nobody (the client stopped waiting). The session check runs next and
  /// consumes no global slot when it sheds.
  Decision admit(std::size_t session_inflight, bool deadline_expired = false) {
    if (deadline_expired) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      return Decision::kShedDeadline;
    }
    if (session_inflight >= config_.session_credits) {
      shed_session_.fetch_add(1, std::memory_order_relaxed);
      return Decision::kShedSession;
    }
    std::size_t cur = inflight_.load(std::memory_order_relaxed);
    do {
      if (cur >= config_.max_inflight) {
        shed_global_.fetch_add(1, std::memory_order_relaxed);
        return Decision::kShedGlobal;
      }
    } while (!inflight_.compare_exchange_weak(cur, cur + 1,
                                              std::memory_order_relaxed));
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Decision::kAdmit;
  }

  /// One admitted request finished (its response was produced).
  void release() { inflight_.fetch_sub(1, std::memory_order_relaxed); }

  std::size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted_total() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_total() const {
    return shed_session_.load(std::memory_order_relaxed) +
           shed_global_.load(std::memory_order_relaxed) +
           shed_deadline_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_session_total() const {
    return shed_session_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_global_total() const {
    return shed_global_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_deadline_total() const {
    return shed_deadline_.load(std::memory_order_relaxed);
  }

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_session_{0};
  std::atomic<std::uint64_t> shed_global_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
};

}  // namespace chameleon::svc
