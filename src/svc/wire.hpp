// Versioned length-prefixed binary wire protocol for the network service
// layer (docs/SERVICE.md). Every message is one frame (version 2):
//
//   offset size field
//   0      4    magic "CHML"
//   4      1    protocol version (= kWireVersion)
//   5      1    opcode (Op)
//   6      1    status (Status; kOk on requests)
//   7      1    reserved, must be 0
//   8      8    request id (echoed verbatim in the response)
//   16     4    payload length (little-endian; bounded by max_payload)
//   20     4    deadline (milliseconds of budget granted by the sender,
//               relative to receipt; 0 = none; 0 in responses)
//   24     4    reserved, must be 0
//   28     4    CRC32C of the payload bytes
//   32     ...  payload
//
// Version 2 widened the header from 24 to 32 bytes to carry the per-request
// deadline budget (docs/SERVICE.md): a server that dequeues a request after
// its deadline lapsed sheds it with Status::kDeadlineExceeded instead of
// servicing it late.
//
// Decoding is strict and bounded: FrameDecoder validates the header fields
// *before* waiting for the payload (an oversized length is rejected from the
// first 32 bytes, so a hostile peer cannot make the server buffer unbounded
// data), checks the payload checksum, and never throws — every malformed
// input maps to a DecodeResult error that poisons the decoder, after which
// the connection must be torn down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32c.hpp"

namespace chameleon::svc {

/// CRC32C (Castagnoli) over `data`; the shared implementation lives in
/// common/crc32c.hpp so the durability layer frames with the same checksum.
inline std::uint32_t crc32c(std::span<const std::uint8_t> data,
                            std::uint32_t seed = 0) {
  return chameleon::crc32c(data, seed);
}

enum class Op : std::uint8_t {
  kPing = 0,  ///< liveness probe; empty payload both ways
  kGet,       ///< request: key; response: value bytes
  kPut,       ///< request: key + value; response: empty
  kDelete,    ///< request: key; response: empty
  kStats,     ///< request: empty; response: JSON service counters
  kMetrics,   ///< request: empty; response: Prometheus text exposition
  kDigest,    ///< request: empty; response: 16-hex-char cluster digest
  kHealth,    ///< request: empty; response: JSON readiness report
              ///< (state recovering|serving|draining + recovery counters);
              ///< answered inline in every state so probes never block
  // --- inter-node peer ops (docs/DISTRIBUTED.md) ---------------------------
  // Version 2 frames carry these between chameleon_router / chameleon_server
  // processes; a node that is not running in distributed mode answers them
  // with kBadRequest.
  kPlace,        ///< request: key body; response: placement body (the ring's
                 ///< full successor order for the key + membership view)
  kReplicate,    ///< request: replicate body (origin node + key + value);
                 ///< stores a full replica under the client key
  kStripeWrite,  ///< request: stripe-shard body (EC geometry + shard bytes);
                 ///< stores one shard blob under the internal shard key
  kPeerHealth,   ///< request: peer-health body (sender id + view version);
                 ///< renews the sender's lease; response echoes local view
  kWearReport,   ///< request: empty; response: wear-report body (per-flash-
                 ///< server erase counters) for cross-node wear aggregation
  kCount
};
const char* op_name(Op op);

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound,      ///< GET/DELETE of an absent key
  kRetryLater,    ///< shed by admission control or a recovering server
  kBadRequest,    ///< malformed body; do not retry
  kShuttingDown,  ///< server is draining; reconnect elsewhere/later
  kError,         ///< internal failure; payload carries a message
  kDeadlineExceeded,  ///< the request's deadline lapsed before execution;
                      ///< the server shed it without touching the store
  kCount
};
const char* status_name(Status s);

inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::uint32_t kDefaultMaxPayload = 4u << 20;  ///< 4 MiB
inline constexpr std::uint32_t kMaxKeyBytes = 4096;
/// The literal magic bytes, in wire order.
inline constexpr std::uint8_t kMagic[4] = {'C', 'H', 'M', 'L'};

struct Frame {
  Op op = Op::kPing;
  Status status = Status::kOk;  ///< kOk on requests
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
  /// Deadline budget the sender grants, in milliseconds relative to receipt
  /// (relative, so no clock synchronization is assumed). 0 = no deadline.
  /// Always 0 in responses. Deliberately the last member so aggregate
  /// initialization of the classic four fields keeps working.
  std::uint32_t deadline_ms = 0;
};

/// Append the encoded frame to `out`.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> encode_frame(const Frame& frame);

enum class DecodeResult {
  kNeedMore,  ///< buffer holds only a partial frame; feed more bytes
  kFrame,     ///< one complete, validated frame extracted
  kBadMagic,
  kBadVersion,
  kBadOp,
  kBadStatus,
  kBadReserved,
  kOversized,  ///< payload length exceeds the decoder's max_payload
  kBadCrc,
};
const char* decode_result_name(DecodeResult r);

/// Incremental frame extractor for one connection. feed() appends raw bytes;
/// next() pops complete frames. The first malformed header or checksum
/// poisons the decoder permanently (framing is lost, so resynchronization is
/// impossible); callers must close the connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const std::uint8_t> data);

  /// Extract the next frame into `out`. Returns kFrame on success, kNeedMore
  /// when the buffer ends mid-frame, or the sticky error.
  DecodeResult next(Frame& out);

  bool poisoned() const { return error_.has_value(); }
  std::size_t buffered() const { return buffer_.size() - consumed_; }
  std::uint32_t max_payload() const { return max_payload_; }
  std::uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  DecodeResult poison(DecodeResult r) {
    error_ = r;
    // Framing is lost; buffered bytes can never parse again. Drop them so a
    // poisoned session holds no dead memory while it awaits teardown.
    buffer_.clear();
    consumed_ = 0;
    return r;
  }

  std::uint32_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ already handed out
  std::optional<DecodeResult> error_;
  std::uint64_t frames_decoded_ = 0;
};

// --- request body codecs ---------------------------------------------------
// Bodies are length-prefixed with little-endian u32 fields. Decoders are
// exact: trailing bytes after the declared fields make the body malformed
// (kBadRequest at the service layer), and every length is validated against
// the remaining payload before any read.

/// PUT body: u32 key_len | key | u32 value_len | value.
struct PutBody {
  std::string key;
  std::vector<std::uint8_t> value;
};
void encode_put_body(std::string_view key, std::span<const std::uint8_t> value,
                     std::vector<std::uint8_t>& out);
bool decode_put_body(std::span<const std::uint8_t> payload, PutBody& out);

/// GET/DELETE body: u32 key_len | key.
void encode_key_body(std::string_view key, std::vector<std::uint8_t>& out);
bool decode_key_body(std::span<const std::uint8_t> payload, std::string& out);

// --- peer-op body codecs (docs/DISTRIBUTED.md) -----------------------------
// Same conventions as the client bodies: little-endian fixed-width fields,
// exact lengths, decoders that validate before every read. All of these ride
// inside ordinary v2 frames, so the CRC32C payload checksum already covers
// them; the stripe body additionally carries the CRC of the *original*
// object so the router can verify a reconstruction end to end.

/// REPLICATE body: u32 origin_node | u32 key_len | key | u32 value_len |
/// value. Stored under the plain client key on the receiving node.
struct ReplicateBody {
  std::uint32_t origin_node = 0;  ///< router/originating node id (diagnostic)
  std::string key;
  std::vector<std::uint8_t> value;
};
void encode_replicate_body(const ReplicateBody& body,
                           std::vector<std::uint8_t>& out);
bool decode_replicate_body(std::span<const std::uint8_t> payload,
                           ReplicateBody& out);

/// Stripe shard flags (ShardMeta::flags).
inline constexpr std::uint8_t kShardFlagTombstone = 0x01;

/// Erasure-coding geometry + integrity metadata for one stripe shard. The
/// same struct is embedded in the stored shard blob so a reader can recover
/// the stripe parameters — and the write's version — from any single shard.
/// Versions are what make reads correct across fail/rejoin: a rejoined node
/// may hold shards of an older write, and the reader reconstructs only from
/// the highest version with >= k shards. A tombstone (flags bit 0) records
/// a versioned delete; its stripe_len is 0 and it carries no shard bytes.
struct ShardMeta {
  std::uint16_t k = 0;       ///< data shards
  std::uint16_t m = 0;       ///< parity shards
  std::uint32_t index = 0;   ///< this shard's index in [0, k + m)
  std::uint64_t version = 0;  ///< router-assigned monotone write version
  std::uint8_t flags = 0;     ///< kShardFlag* bits
  std::uint64_t stripe_len = 0;  ///< original object payload bytes
  std::uint32_t stripe_crc = 0;  ///< CRC32C of the original object payload
};

/// STRIPE_WRITE body: u32 origin_node | u32 key_len | key | shard blob,
/// where the shard blob is ShardMeta (u16 k | u16 m | u32 index |
/// u64 version | u8 flags | u64 stripe_len | u32 stripe_crc) followed by
/// the raw shard bytes.
struct StripeShardBody {
  std::uint32_t origin_node = 0;
  std::string key;  ///< the *client* key; nodes store under shard_key()
  ShardMeta meta;
  std::vector<std::uint8_t> shard;
};
void encode_stripe_shard_body(const StripeShardBody& body,
                              std::vector<std::uint8_t>& out);
bool decode_stripe_shard_body(std::span<const std::uint8_t> payload,
                              StripeShardBody& out);

/// The self-describing blob a node stores for one shard (and a router reads
/// back with a plain GET of the shard key): ShardMeta header + shard bytes.
void encode_shard_blob(const ShardMeta& meta,
                       std::span<const std::uint8_t> shard,
                       std::vector<std::uint8_t>& out);
bool decode_shard_blob(std::span<const std::uint8_t> blob, ShardMeta& meta,
                       std::vector<std::uint8_t>& shard);

/// Replica blob flags (ReplicaBlob::tombstone on the wire).
inline constexpr std::uint8_t kReplicaFlagTombstone = 0x01;

/// The self-describing blob a node stores for one whole-value replica
/// (replicate mode, docs/DISTRIBUTED.md): u8 flags | u64 version
/// (little-endian) | value bytes. The router never stores a client value
/// verbatim — the version is what makes reads correct across fail/rejoin
/// (readers keep the highest version; nodes apply replica writes
/// newest-wins), and the tombstone flag is what makes deletes rejoin-safe
/// (a rejoined node cannot resurrect a deleted key). Tombstones carry no
/// value bytes: 9 bytes exactly.
struct ReplicaBlob {
  std::uint64_t version = 0;
  bool tombstone = false;
  std::vector<std::uint8_t> value;  ///< empty for tombstones
};

void encode_replica_blob(std::uint64_t version, bool tombstone,
                         std::span<const std::uint8_t> value,
                         std::vector<std::uint8_t>& out);
/// False on malformed input (short blob, unknown flags, tombstone carrying
/// value bytes).
bool decode_replica_blob(std::span<const std::uint8_t> blob, ReplicaBlob& out);

/// Internal key a stripe shard is stored under. The "\x01" prefix keeps the
/// namespace disjoint from ordinary client traffic by convention (client
/// keys are free-form bytes, but tools and tests never start keys with 0x01).
std::string shard_key(std::string_view key, std::uint32_t index);

/// PLACE response / membership exchange: u64 view_version | u32 count |
/// count x u32 node ids, in ring-successor preference order.
struct PlacementBody {
  std::uint64_t view_version = 0;
  std::vector<std::uint32_t> nodes;
};
void encode_placement_body(const PlacementBody& body,
                           std::vector<std::uint8_t>& out);
bool decode_placement_body(std::span<const std::uint8_t> payload,
                           PlacementBody& out);

/// PEER_HEALTH request and response: u32 node_id | u8 state |
/// u64 view_version. In requests `state` is the sender's serving state
/// (0 = recovering, 1 = serving, 2 = draining); responses echo the
/// receiver's. View versions let either side notice a membership change.
struct PeerHealthBody {
  std::uint32_t node_id = 0;
  std::uint8_t state = 0;
  std::uint64_t view_version = 0;
};
void encode_peer_health_body(const PeerHealthBody& body,
                             std::vector<std::uint8_t>& out);
bool decode_peer_health_body(std::span<const std::uint8_t> payload,
                             PeerHealthBody& out);

/// WEAR_REPORT response: u32 node_id | u64 epoch | u64 total_erases |
/// u32 server_count | server_count x u64 per-flash-server erase counters.
/// The request payload is empty.
struct WearReportBody {
  std::uint32_t node_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t total_erases = 0;
  std::vector<std::uint64_t> server_erases;
};
void encode_wear_report_body(const WearReportBody& body,
                             std::vector<std::uint8_t>& out);
bool decode_wear_report_body(std::span<const std::uint8_t> payload,
                             WearReportBody& out);

}  // namespace chameleon::svc
