// One accepted connection's state machine: a nonblocking fd, the incremental
// frame decoder for inbound bytes, a chunked pending-output queue with
// vectored (writev-style) flushing and partial-write handling, and the
// per-session admission/idle bookkeeping the reactor needs. All mutation
// happens on the owning reactor's IO thread; worker threads only hold a
// shared_ptr so a session outlives any request still executing against it.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "svc/wire.hpp"

namespace chameleon::svc {

/// Recycles output chunks between sessions of one reactor so a busy serving
/// loop stops paying a heap allocation per response burst. Single-threaded
/// by design (owned and touched only by the reactor's IO thread).
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_buffers = 64) : cap_(max_buffers) {}

  std::vector<std::uint8_t> get() {
    if (free_.empty()) return {};
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    return buf;
  }

  void put(std::vector<std::uint8_t>&& buf) {
    if (free_.size() >= cap_ || buf.capacity() == 0) return;
    free_.push_back(std::move(buf));
  }

  std::size_t size() const { return free_.size(); }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t cap_;
};

class Session {
 public:
  enum class IoResult {
    kOk,         ///< made progress; more may be pending
    kWouldBlock, ///< EAGAIN — wait for the next epoll event
    kEof,        ///< peer closed its write side
    kError,      ///< socket error; tear the session down
  };

  /// `pool` (optional) recycles output chunks; must outlive the session and
  /// be touched only from the owning IO thread.
  Session(int fd, std::uint64_t id, std::uint32_t max_payload,
          BufferPool* pool = nullptr);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Read whatever the socket holds into the decoder (loops until EAGAIN).
  /// Returns kEof/kError when the connection is done; updates last_activity
  /// and adds the bytes read to *bytes_read.
  IoResult read_some(std::uint64_t* bytes_read);

  /// Queue bytes/a frame for transmission. Responses enqueued back to back
  /// batch into shared output chunks, so one flush can push many frames with
  /// a single vectored write.
  void enqueue(const std::vector<std::uint8_t>& bytes);
  void enqueue(const Frame& frame);

  /// Push pending output to the socket with one sendmsg over up to
  /// kMaxFlushIov chunks per syscall. Returns kOk with pending() == 0 when
  /// fully flushed, kWouldBlock when the kernel buffer filled (arm EPOLLOUT),
  /// kError on a broken pipe. A short write mid-iovec leaves the byte cursor
  /// exactly where the kernel stopped — never re-sending or skipping bytes.
  /// Adds bytes written to *bytes_written.
  IoResult flush(std::uint64_t* bytes_written);

  bool pending() const { return pending_bytes_ > 0; }
  std::size_t pending_bytes() const { return pending_bytes_; }

  /// Close the fd now (idempotent). Outstanding worker jobs see closed() and
  /// drop their completions.
  void close();
  /// Detach the fd without closing it and mark the session closed(). The
  /// caller owns the returned fd (-1 if already closed). The reactor uses
  /// this to defer the ::close past the current epoll batch so the kernel
  /// cannot recycle the fd number while stale events for it are still queued.
  int release_fd();
  bool closed() const { return fd_ < 0; }

  int fd() const { return fd_; }
  std::uint64_t id() const { return id_; }
  FrameDecoder& decoder() { return decoder_; }

  /// Chunks flushed per sendmsg call are capped: IOV_MAX is overkill and a
  /// small fixed array keeps the hot path allocation-free.
  static constexpr std::size_t kMaxFlushIov = 16;
  /// A chunk that grew past this stops accepting further frames (the next
  /// enqueue opens a fresh chunk), bounding per-chunk memcpy on flush.
  static constexpr std::size_t kChunkTarget = 64 * 1024;

  // --- reactor bookkeeping (IO thread only) --------------------------------
  std::size_t inflight = 0;   ///< admitted requests awaiting a response
  bool want_write = false;    ///< EPOLLOUT currently armed
  bool peer_gone = false;     ///< read side saw EOF/error; close when drained
  std::chrono::steady_clock::time_point last_activity;

 private:
  /// Tail chunk with room, opening a fresh one when needed.
  std::vector<std::uint8_t>& tail_chunk();
  void recycle_head();

  int fd_;
  std::uint64_t id_;
  FrameDecoder decoder_;
  BufferPool* pool_;
  /// Pending output as a queue of chunks; head_off_ is the flush cursor
  /// inside the front chunk. deque: chunk handles never move on push_back.
  std::deque<std::vector<std::uint8_t>> out_;
  std::size_t head_off_ = 0;
  std::size_t pending_bytes_ = 0;
};

}  // namespace chameleon::svc
