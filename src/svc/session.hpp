// One accepted connection's state machine: a nonblocking fd, the incremental
// frame decoder for inbound bytes, a pending-output buffer with partial-write
// handling, and the per-session admission/idle bookkeeping the reactor needs.
// All mutation happens on the server's IO thread; worker threads only hold a
// shared_ptr so a session outlives any request still executing against it.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "svc/wire.hpp"

namespace chameleon::svc {

class Session {
 public:
  enum class IoResult {
    kOk,         ///< made progress; more may be pending
    kWouldBlock, ///< EAGAIN — wait for the next epoll event
    kEof,        ///< peer closed its write side
    kError,      ///< socket error; tear the session down
  };

  Session(int fd, std::uint64_t id, std::uint32_t max_payload);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Read whatever the socket holds into the decoder (loops until EAGAIN).
  /// Returns kEof/kError when the connection is done; updates last_activity
  /// and adds the bytes read to *bytes_read.
  IoResult read_some(std::uint64_t* bytes_read);

  /// Queue `bytes` for transmission (appends to the output buffer).
  void enqueue(const std::vector<std::uint8_t>& bytes);
  void enqueue(const Frame& frame) { encode_frame(frame, out_); }

  /// Push pending output to the socket. Returns kOk with pending() == 0 when
  /// fully flushed, kWouldBlock when the kernel buffer filled (arm EPOLLOUT),
  /// kError on a broken pipe. Adds bytes written to *bytes_written.
  IoResult flush(std::uint64_t* bytes_written);

  bool pending() const { return out_off_ < out_.size(); }
  std::size_t pending_bytes() const { return out_.size() - out_off_; }

  /// Close the fd now (idempotent). Outstanding worker jobs see closed() and
  /// drop their completions.
  void close();
  /// Detach the fd without closing it and mark the session closed(). The
  /// caller owns the returned fd (-1 if already closed). The reactor uses
  /// this to defer the ::close past the current epoll batch so the kernel
  /// cannot recycle the fd number while stale events for it are still queued.
  int release_fd();
  bool closed() const { return fd_ < 0; }

  int fd() const { return fd_; }
  std::uint64_t id() const { return id_; }
  FrameDecoder& decoder() { return decoder_; }

  // --- reactor bookkeeping (IO thread only) --------------------------------
  std::size_t inflight = 0;   ///< admitted requests awaiting a response
  bool want_write = false;    ///< EPOLLOUT currently armed
  bool peer_gone = false;     ///< read side saw EOF/error; close when drained
  std::chrono::steady_clock::time_point last_activity;

 private:
  int fd_;
  std::uint64_t id_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> out_;
  std::size_t out_off_ = 0;
};

}  // namespace chameleon::svc
