#include "svc/ack_ledger.hpp"

#include <algorithm>
#include <cstdio>

namespace chameleon::svc {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint64_t AckLedger::issued(std::string_view key,
                                std::uint32_t value_crc) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  keys_[std::string(key)].in_doubt.emplace_back(seq, value_crc);
  ++issued_total_;
  return seq;
}

void AckLedger::acked(std::string_view key, std::uint64_t seq) {
  std::lock_guard lock(mutex_);
  const auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return;
  KeyRecord& rec = it->second;
  const auto entry = std::find_if(
      rec.in_doubt.begin(), rec.in_doubt.end(),
      [seq](const auto& e) { return e.first == seq; });
  if (entry == rec.in_doubt.end()) return;  // already resolved
  // Monotonic: a stale ack (older seq than the current acked write) must not
  // roll the ledger backwards.
  if (!rec.acked_crc.has_value() || seq > rec.acked_seq) {
    rec.acked_crc = entry->second;
    rec.acked_seq = seq;
  }
  ++acked_total_;
  // Everything issued at or before the acked write is superseded: with
  // per-key sequential issue order, those writes happened-before this one.
  rec.in_doubt.erase(
      std::remove_if(rec.in_doubt.begin(), rec.in_doubt.end(),
                     [seq](const auto& e) { return e.first <= seq; }),
      rec.in_doubt.end());
}

void AckLedger::not_applied(std::string_view key, std::uint64_t seq) {
  std::lock_guard lock(mutex_);
  const auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return;
  auto& dub = it->second.in_doubt;
  dub.erase(std::remove_if(dub.begin(), dub.end(),
                           [seq](const auto& e) { return e.first == seq; }),
            dub.end());
}

AckLedger::CheckResult AckLedger::check(std::string_view key, bool found,
                                        std::uint32_t value_crc) const {
  std::lock_guard lock(mutex_);
  CheckResult result;
  const auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return result;  // never wrote this key
  const KeyRecord& rec = it->second;

  if (!rec.acked_crc.has_value()) {
    // No write was ever acked: the key may hold any in-doubt value or be
    // absent. A present value matching nothing we wrote is corruption.
    if (!found) return result;
    for (const auto& [seq, crc] : rec.in_doubt) {
      if (crc == value_crc) return result;
    }
    result.verdict = Verdict::kCorrupt;
    result.detail = "value matches no write this client issued";
    return result;
  }

  if (!found) {
    result.verdict = Verdict::kLostAck;
    result.detail = "acked write (seq " + std::to_string(rec.acked_seq) +
                    ") missing after recovery";
    return result;
  }
  if (value_crc == *rec.acked_crc) return result;
  // A write issued after the last ack may have been applied before the
  // crash even though its ack never arrived — that is not loss.
  for (const auto& [seq, crc] : rec.in_doubt) {
    if (seq > rec.acked_seq && crc == value_crc) return result;
  }
  result.verdict = Verdict::kLostAck;
  result.detail =
      "recovered value (crc " + std::to_string(value_crc) +
      ") is neither the acked write (seq " + std::to_string(rec.acked_seq) +
      ", crc " + std::to_string(*rec.acked_crc) +
      ") nor any later in-doubt write";
  return result;
}

std::vector<std::string> AckLedger::acked_keys() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(keys_.size());
  for (const auto& [key, rec] : keys_) {
    if (rec.acked_crc.has_value()) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t AckLedger::issued_total() const {
  std::lock_guard lock(mutex_);
  return issued_total_;
}

std::uint64_t AckLedger::acked_total() const {
  std::lock_guard lock(mutex_);
  return acked_total_;
}

void AckLedger::write_jsonl(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  std::vector<const std::pair<const std::string, KeyRecord>*> rows;
  rows.reserve(keys_.size());
  for (const auto& kv : keys_) rows.push_back(&kv);
  std::sort(rows.begin(), rows.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* row : rows) {
    const KeyRecord& rec = row->second;
    out << "{\"key\":\"" << json_escape(row->first) << "\"";
    if (rec.acked_crc.has_value()) {
      out << ",\"acked_crc\":" << *rec.acked_crc
          << ",\"acked_seq\":" << rec.acked_seq;
    }
    out << ",\"in_doubt\":[";
    bool first = true;
    for (const auto& [seq, crc] : rec.in_doubt) {
      if (!first) out << ',';
      first = false;
      out << "{\"seq\":" << seq << ",\"crc\":" << crc << "}";
    }
    out << "]}\n";
  }
}

}  // namespace chameleon::svc
