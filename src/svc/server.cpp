#include "svc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/faults.hpp"
#include "common/json.hpp"
#include "durability/group_commit.hpp"
#include "fault/digest.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace chameleon::svc {

namespace {

/// Output buffered per session is capped: a peer that floods pipelined
/// requests without reading responses (each response can be far larger than
/// the request, e.g. METRICS or GET of a large value) is disconnected
/// instead of ballooning server memory. Enforced both on the inline
/// control-response path and on the completion path.
constexpr std::size_t kMaxSessionOutBytes = 32u << 20;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("svc: ") + what + ": " +
                           std::strerror(errno));
}

Nanos elapsed_ns(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
      .count();
}

bool is_data_op(Op op) {
  // Peer store ops (kReplicate/kStripeWrite) and the wear snapshot ride the
  // same admission/deadline/store-backend path as client data ops; kPlace
  // and kPeerHealth are pure membership reads answered inline like kHealth.
  return op == Op::kGet || op == Op::kPut || op == Op::kDelete ||
         op == Op::kDigest || op == Op::kReplicate || op == Op::kStripeWrite ||
         op == Op::kWearReport;
}

}  // namespace

const char* serving_state_name(ServingState s) {
  switch (s) {
    case ServingState::kRecovering: return "recovering";
    case ServingState::kServing: return "serving";
    case ServingState::kDraining: return "draining";
  }
  return "unknown";
}

const char* store_mode_name(StoreMode mode) {
  switch (mode) {
    case StoreMode::kMutex: return "mutex";
    case StoreMode::kSharded: return "sharded";
  }
  return "unknown";
}

StoreMode store_mode_from_name(const std::string& name) {
  if (name == "mutex") return StoreMode::kMutex;
  if (name == "sharded") return StoreMode::kSharded;
  throw std::invalid_argument("svc: unknown store mode '" + name +
                              "' (expected mutex|sharded)");
}

Server::Server(core::Chameleon& system, const ServerConfig& config)
    : system_(system), config_(config), admission_(config.admission) {
  for (auto& fd : wake_fds_) fd.store(-1, std::memory_order_relaxed);
  if (obs::enabled()) {
    auto& reg = obs::metrics();
    for (std::size_t i = 0; i < static_cast<std::size_t>(Op::kCount); ++i) {
      const char* op = op_name(static_cast<Op>(i));
      metric_.requests[i] =
          &reg.counter("chameleon_svc_requests_total", {{"op", op}},
                       "Service requests received, by op");
      // Bin counts bound the exposition, which renders every bucket of every
      // {op} x {stage} series: at 1000 bins the METRICS payload outgrew the
      // client's 4 MiB frame cap once the peer data ops (replicate /
      // stripe_write / wear_report) joined the grid. Consumers of these
      // histograms read sum/count (bench attribution) or coarse quantiles
      // (Prometheus), so 100-200 linear bins lose nothing that was usable.
      metric_.latency[i] = &reg.histogram(
          "chameleon_svc_request_latency_ns", 0.0, 1e8, 200, {{"op", op}},
          "Admission-to-response latency of served requests");
      if (!is_data_op(static_cast<Op>(i))) continue;
      for (std::size_t s = 0;
           s < static_cast<std::size_t>(obs::SvcStage::kCount); ++s) {
        metric_.stage[i][s] = &reg.histogram(
            "chameleon_svc_stage_seconds", 0.0, 0.1, 100,
            {{"op", op},
             {"stage", obs::svc_stage_name(static_cast<obs::SvcStage>(s))}},
            "Per-pipeline-stage time of served data requests "
            "(decode/admission/queue/store_exec/wal_fsync/completion/flush; "
            "the stages partition the request's server-side wall time)");
      }
    }
    metric_.shed_session =
        &reg.counter("chameleon_svc_shed_total", {{"scope", "session"}},
                     "Requests shed by admission control, by scope");
    metric_.shed_global =
        &reg.counter("chameleon_svc_shed_total", {{"scope", "global"}},
                     "Requests shed by admission control, by scope");
    metric_.shed_deadline =
        &reg.counter("chameleon_svc_shed_total", {{"scope", "deadline"}},
                     "Requests shed by admission control, by scope");
    metric_.deadline_exceeded =
        &reg.counter("chameleon_svc_deadline_exceeded_total", {},
                     "Requests answered kDeadlineExceeded (shed on arrival "
                     "or past-deadline at store dequeue)");
    metric_.bytes_read = &reg.counter("chameleon_svc_bytes_read_total", {},
                                      "Bytes read from service sockets");
    metric_.bytes_written =
        &reg.counter("chameleon_svc_bytes_written_total", {},
                     "Bytes written to service sockets");
    metric_.sessions_opened =
        &reg.counter("chameleon_svc_sessions_opened_total", {},
                     "Connections accepted by the service");
    metric_.sessions_closed =
        &reg.counter("chameleon_svc_sessions_closed_total", {},
                     "Connections closed by the service");
    metric_.protocol_errors =
        &reg.counter("chameleon_svc_protocol_errors_total", {},
                     "Connections torn down on malformed frames");
    metric_.durable_gated =
        &reg.counter("chameleon_svc_durable_gated_total", {},
                     "Mutation acks held for a WAL group-commit fsync");
    metric_.inflight = &reg.gauge("chameleon_svc_inflight", {},
                                  "Admitted requests currently in flight");
    metric_.resolved = true;
  }
}

Server::~Server() {
  request_stop();
  wait();
}

void Server::open_reactor_sockets() {
  const bool reuse_port = reactors_.size() > 1;
  const std::string host =
      config_.host == "localhost" ? "127.0.0.1" : config_.host;
  std::uint16_t bound_port = config_.port;
  for (auto& rp : reactors_) {
    Reactor& r = *rp;
    r.listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (r.listen_fd < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(r.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (reuse_port) {
      // One accept socket per reactor on the same port: the kernel hashes
      // incoming connections across them, so accepts never funnel through
      // a single thread.
      if (::setsockopt(r.listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                       sizeof(one)) < 0) {
        throw_errno("setsockopt(SO_REUSEPORT)");
      }
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(bound_port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("svc: cannot parse listen host '" +
                               config_.host + "' (numeric IPv4 expected)");
    }
    if (::bind(r.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind");
    }
    if (::listen(r.listen_fd, 128) < 0) throw_errno("listen");
    if (bound_port == 0) {
      // Ephemeral request: the first bind picks the port; every later
      // reactor binds the same number.
      sockaddr_in bound{};
      socklen_t bound_len = sizeof(bound);
      if (::getsockname(r.listen_fd, reinterpret_cast<sockaddr*>(&bound),
                        &bound_len) < 0) {
        throw_errno("getsockname");
      }
      bound_port = ntohs(bound.sin_port);
    }

    r.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (r.epoll_fd < 0) throw_errno("epoll_create1");
    r.wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (r.wake_fd < 0) throw_errno("eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r.listen_fd;
    if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, r.listen_fd, &ev) < 0) {
      throw_errno("epoll_ctl(listen)");
    }
    ev.data.fd = r.wake_fd;
    if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, r.wake_fd, &ev) < 0) {
      throw_errno("epoll_ctl(wake)");
    }
  }
  port_ = bound_port;
}

void Server::start() {
  if (running()) throw std::runtime_error("svc: server already running");

  const std::size_t nreactors = std::clamp<std::size_t>(
      config_.reactors == 0 ? 1 : config_.reactors, 1, kMaxReactors);
  reactors_.clear();
  for (std::size_t i = 0; i < nreactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->index = i;
    r->next_session_id = i + 1;
    r->fault_rng = Xoshiro256(config_.faults.seed + i);
    reactors_.push_back(std::move(r));
  }
  try {
    open_reactor_sockets();
  } catch (...) {
    for (auto& rp : reactors_) {
      if (rp->listen_fd >= 0) ::close(rp->listen_fd);
      if (rp->epoll_fd >= 0) ::close(rp->epoll_fd);
      if (rp->wake_fd >= 0) ::close(rp->wake_fd);
    }
    reactors_.clear();
    throw;
  }

  if (config_.store_mode == StoreMode::kSharded) {
    StorePipelineOptions opts;
    opts.workers = std::max(1u, config_.workers);
    opts.drain_batch = std::max(1u, config_.drain_batch);
    pipeline_ = std::make_unique<StorePipeline>(system_, opts);
    pipeline_->start();
    pool_.reset();
  } else {
    pipeline_.reset();
    pool_ = std::make_unique<ThreadPool>(std::max(1u, config_.workers));
  }

  stop_requested_.store(false, std::memory_order_release);
  drained_clean_.store(false, std::memory_order_relaxed);
  state_.store(static_cast<std::uint8_t>(config_.start_recovering
                                             ? ServingState::kRecovering
                                             : ServingState::kServing),
               std::memory_order_release);
  start_time_ = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < nreactors; ++i) {
    wake_fds_[i].store(reactors_[i]->wake_fd, std::memory_order_release);
  }
  reactor_count_.store(nreactors, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& rp : reactors_) {
    Reactor* r = rp.get();
    r->thread = std::thread([this, r] { io_loop(*r); });
  }
}

void Server::request_stop() noexcept {
  // Async-signal-safe: one atomic store plus bounded write(2) calls against
  // a fixed array of fds (never a container wait() could be mutating).
  stop_requested_.store(true, std::memory_order_release);
  const std::size_t n = reactor_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n && i < kMaxReactors; ++i) {
    const int fd = wake_fds_[i].load(std::memory_order_acquire);
    if (fd >= 0) {
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t w = ::write(fd, &one, sizeof(one));
    }
  }
}

void Server::wait() {
  std::lock_guard lock(lifecycle_mutex_);
  // Everything below only matters for the teardown that actually had
  // serving state; a second wait() (e.g. the destructor after an explicit
  // stop()) must not re-touch the group-commit pointer, whose target may be
  // gone by then.
  const bool had_reactors = !reactors_.empty();
  for (auto& rp : reactors_) {
    if (rp->thread.joinable()) rp->thread.join();
  }
  // Stop the store backends next: queued jobs still execute (the pool
  // destructor and pipeline stop drain their queues) and may post
  // completions or register group-commit waiters, so the reactor structures
  // they post into must still exist.
  pool_.reset();
  if (pipeline_) pipeline_->stop();
  // Group-commit barrier: once wait_durable(appended_seq()) returns, every
  // ack continuation registered by the serving path has already fired
  // (committer fires callbacks before advancing durable_seq_), so nothing
  // references the reactors beyond this point.
  if (had_reactors) {
    if (auto* gc = group_commit_.load(std::memory_order_acquire)) {
      gc->wait_durable(gc->appended_seq());
    }
  }
  bool all_clean = !reactors_.empty();
  reactor_count_.store(0, std::memory_order_release);
  for (auto& rp : reactors_) {
    Reactor& r = *rp;
    all_clean = all_clean && r.drained_clean;
    {
      // Dropped completions may hold the last ref to a session whose
      // destructor recycles chunks into r.buffers — clear before the
      // reactor itself goes away.
      std::lock_guard clock(r.completion_mutex);
      r.completions.clear();
    }
    wake_fds_[r.index].store(-1, std::memory_order_release);
    if (r.epoll_fd >= 0) {
      ::close(r.epoll_fd);
      r.epoll_fd = -1;
    }
    if (r.wake_fd >= 0) {
      ::close(r.wake_fd);
      r.wake_fd = -1;
    }
  }
  if (!reactors_.empty()) {
    drained_clean_.store(all_clean, std::memory_order_relaxed);
  }
  reactors_.clear();
}

void Server::stop() {
  request_stop();
  wait();
}

void Server::set_serving() {
  std::uint8_t expected =
      static_cast<std::uint8_t>(ServingState::kRecovering);
  state_.compare_exchange_strong(
      expected, static_cast<std::uint8_t>(ServingState::kServing),
      std::memory_order_acq_rel);
}

void Server::set_recovery_info(const RecoveryInfo& info) {
  std::lock_guard lock(recovery_mutex_);
  recovery_ = info;
}

RecoveryInfo Server::recovery_info() const {
  std::lock_guard lock(recovery_mutex_);
  return recovery_;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted_total = accepted_total_.load(std::memory_order_relaxed);
  s.sessions_open = sessions_open_.load(std::memory_order_relaxed);
  s.sessions_closed_total =
      sessions_closed_total_.load(std::memory_order_relaxed);
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.responses_total = responses_total_.load(std::memory_order_relaxed);
  s.shed_total = admission_.shed_total();
  s.protocol_errors_total =
      protocol_errors_total_.load(std::memory_order_relaxed);
  s.faults_injected_total =
      faults_injected_total_.load(std::memory_order_relaxed);
  s.bytes_read_total = bytes_read_total_.load(std::memory_order_relaxed);
  s.bytes_written_total = bytes_written_total_.load(std::memory_order_relaxed);
  s.inflight = admission_.inflight();
  s.slow_requests_total = slow_requests_total_.load(std::memory_order_relaxed);
  s.deadline_exceeded_total =
      deadline_exceeded_total_.load(std::memory_order_relaxed);
  s.durable_gated_total =
      durable_gated_total_.load(std::memory_order_relaxed);
  if (pipeline_) {
    s.pipeline_jobs_total = pipeline_->jobs_executed();
    s.pipeline_drains_total = pipeline_->drains();
    s.pipeline_bypass_windows_total = pipeline_->bypass_windows();
  }
  s.state = state();
  s.trace_dropped = obs::trace().dropped();
  s.uptime_seconds =
      start_time_.time_since_epoch().count() == 0
          ? 0.0
          : static_cast<double>(
                elapsed_ns(start_time_, std::chrono::steady_clock::now())) /
                1e9;
  s.drained_clean = drained_clean_.load(std::memory_order_relaxed);
  return s;
}

void Server::io_loop(Reactor& r) {
  std::array<epoll_event, 64> events;
  for (;;) {
    const int n = ::epoll_wait(r.epoll_fd, events.data(),
                               static_cast<int>(events.size()), 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (fd == r.wake_fd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t rd =
            ::read(r.wake_fd, &drained, sizeof(drained));
        continue;
      }
      if (fd == r.listen_fd) {
        accept_ready(r);
        continue;
      }
      const auto it = r.sessions.find(fd);
      if (it == r.sessions.end()) continue;
      const std::shared_ptr<Session> session = it->second;  // keep alive
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) session->peer_gone = true;
      if ((mask & EPOLLIN) != 0) on_readable(r, session);
      if (!session->closed() && (mask & EPOLLOUT) != 0) pump_out(r, session);
      if (!session->closed() && session->peer_gone &&
          session->inflight == 0 && !session->pending()) {
        close_session(r, session);
      }
    }
    drain_completions(r);

    const auto now = std::chrono::steady_clock::now();
    if (stop_requested_.load(std::memory_order_acquire) && !r.draining) {
      r.draining = true;
      state_.store(static_cast<std::uint8_t>(ServingState::kDraining),
                   std::memory_order_release);
      r.drain_deadline =
          now + std::chrono::nanoseconds(config_.drain_timeout);
      if (r.listen_fd >= 0) {
        ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, r.listen_fd, nullptr);
        ::close(r.listen_fd);
        r.listen_fd = -1;
      }
    }
    if (r.draining) {
      // admission_.inflight() is global, so with several reactors each one
      // holds its sockets open until the whole server has quiesced — a
      // response executing anywhere can still need flushing here.
      bool busy = admission_.inflight() > 0;
      if (!busy) {
        for (const auto& [sfd, session] : r.sessions) {
          if (session->inflight > 0 || session->pending()) {
            busy = true;
            break;
          }
        }
      }
      if (!busy || now >= r.drain_deadline) {
        r.drained_clean = !busy;
        break;
      }
    } else if (config_.idle_timeout > 0) {
      reap_idle(r, now);
    }
    flush_deferred_closes(r);
  }
  while (!r.sessions.empty()) close_session(r, r.sessions.begin()->second);
  flush_deferred_closes(r);
  if (r.listen_fd >= 0) {
    ::close(r.listen_fd);
    r.listen_fd = -1;
  }
  if (r.index == 0) running_.store(false, std::memory_order_release);
}

void Server::accept_ready(Reactor& r) {
  for (;;) {
    const int fd = ::accept4(r.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; stay alive
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>(fd, r.next_session_id,
                                             config_.max_payload, &r.buffers);
    r.next_session_id += reactors_.size();  // ids unique across reactors
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // session destructor closes the fd
    }
    r.sessions.emplace(fd, session);
    accepted_total_.fetch_add(1, std::memory_order_relaxed);
    sessions_open_.fetch_add(1, std::memory_order_relaxed);
    if (metric_.resolved && obs::enabled()) metric_.sessions_opened->inc();
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kSvcSessionOpen)) {
      obs::TraceEvent e;
      e.epoch = epoch_cache_.load(std::memory_order_relaxed);
      e.type = obs::TraceType::kSvcSessionOpen;
      e.server = session->id();
      sink.record(std::move(e));
    }
  }
}

void Server::on_readable(Reactor& r, const std::shared_ptr<Session>& session) {
  std::uint64_t nread = 0;
  const Session::IoResult res = session->read_some(&nread);
  if (nread > 0) {
    bytes_read_total_.fetch_add(nread, std::memory_order_relaxed);
    if (metric_.resolved && obs::enabled()) metric_.bytes_read->inc(nread);
  }
  Frame frame;
  for (;;) {
    // The span opens before frame extraction, so the decode stage covers
    // parsing/validating this frame out of the buffered socket bytes. One
    // relaxed load + no clock reads when observability is off.
    obs::Span span = obs::Span::begin();
    const DecodeResult d = session->decoder().next(frame);
    span.stamp(obs::SvcStage::kDecode);
    if (d == DecodeResult::kFrame) {
      if (!handle_frame(r, session, std::move(frame), std::move(span))) {
        return;
      }
      continue;
    }
    if (d == DecodeResult::kNeedMore) break;
    // Malformed frame: framing is lost, tear the connection down.
    protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
    if (metric_.resolved && obs::enabled()) metric_.protocol_errors->inc();
    close_session(r, session);
    return;
  }
  if (res == Session::IoResult::kEof || res == Session::IoResult::kError) {
    session->peer_gone = true;
  }
  pump_out(r, session);
  if (!session->closed() && session->peer_gone && session->inflight == 0 &&
      !session->pending()) {
    close_session(r, session);
  }
}

bool Server::handle_frame(Reactor& r, const std::shared_ptr<Session>& session,
                          Frame frame, obs::Span span) {
  note_request(frame.op);
  if (frame.status != Status::kOk) {
    // Requests must carry kOk; anything else is a confused peer.
    protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
    if (metric_.resolved && obs::enabled()) metric_.protocol_errors->inc();
    close_session(r, session);
    return false;
  }

  // Serving-path fault hooks: fixed roll order (drop, then stall) keeps the
  // stream reproducible for a given seed, like the network fault plan. Each
  // reactor rolls its own stream (seed + reactor index).
  Nanos stall = 0;
  if (config_.faults.conn_drop_rate > 0.0 || config_.faults.stall_rate > 0.0) {
    const bool drop = r.fault_rng.next_bool(config_.faults.conn_drop_rate);
    const bool do_stall = r.fault_rng.next_bool(config_.faults.stall_rate);
    if (drop) {
      faults_injected_total_.fetch_add(1, std::memory_order_relaxed);
      note_fault("svc_conn_drop");
      close_session(r, session);
      return false;
    }
    if (do_stall) {
      faults_injected_total_.fetch_add(1, std::memory_order_relaxed);
      note_fault("svc_stall");
      stall = config_.faults.stall;
    }
  }

  if (!is_data_op(frame.op)) {
    session->enqueue(control_response(frame));
    responses_total_.fetch_add(1, std::memory_order_relaxed);
    if (session->pending_bytes() > kMaxSessionOutBytes) {
      close_session(r, session);
      return false;
    }
    return true;
  }

  if (r.draining) {
    session->enqueue(Frame{frame.op, Status::kShuttingDown, frame.request_id,
                           {}});
    responses_total_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // A recovering server (durable boot mid-WAL-replay) sheds data ops with
  // kRetryLater — clients back off and retry, and HEALTH reports the state —
  // instead of racing the recovery's store mutations.
  if (state() == ServingState::kRecovering) {
    session->enqueue(Frame{frame.op, Status::kRetryLater, frame.request_id,
                           {}});
    responses_total_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // The deadline base is when the frame's bytes arrived (the session's last
  // read), not when the IO thread got around to parsing them — time spent
  // buffered in the session counts against the budget too.
  const auto now = std::chrono::steady_clock::now();
  const auto deadline =
      frame.deadline_ms > 0
          ? session->last_activity + std::chrono::milliseconds(frame.deadline_ms)
          : std::chrono::steady_clock::time_point::max();

  const auto decision = admission_.admit(session->inflight, now >= deadline);
  if (decision != AdmissionController::Decision::kAdmit) {
    const bool deadline_shed =
        decision == AdmissionController::Decision::kShedDeadline;
    if (deadline_shed) {
      deadline_exceeded_total_.fetch_add(1, std::memory_order_relaxed);
    }
    if (metric_.resolved && obs::enabled()) {
      (decision == AdmissionController::Decision::kShedSession
           ? metric_.shed_session
           : deadline_shed ? metric_.shed_deadline
                           : metric_.shed_global)
          ->inc();
      if (deadline_shed) metric_.deadline_exceeded->inc();
    }
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kSvcShed)) {
      obs::TraceEvent e;
      e.epoch = epoch_cache_.load(std::memory_order_relaxed);
      e.type = obs::TraceType::kSvcShed;
      e.server = session->id();
      e.from = op_name(frame.op);
      sink.record(std::move(e));
    }
    session->enqueue(Frame{frame.op,
                           deadline_shed ? Status::kDeadlineExceeded
                                         : Status::kRetryLater,
                           frame.request_id,
                           {}});
    responses_total_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  session->inflight += 1;
  if (metric_.resolved && obs::enabled()) {
    metric_.inflight->set(static_cast<double>(admission_.inflight()));
  }
  Completion seed;
  seed.session = session;
  seed.reactor = &r;
  seed.op = frame.op;
  seed.admitted_at = now;
  seed.deadline = deadline;
  seed.request_bytes = frame.payload.size();
  seed.request_id = frame.request_id;
  // Fault rolls + the admission decision happened since the decode stamp.
  span.stamp(obs::SvcStage::kAdmission);
  seed.span = span;
  auto job = [this, request = std::move(frame), stall,
              seed = std::move(seed)]() mutable {
    run_request(std::move(request), stall, std::move(seed));
  };
  if (pipeline_) {
    pipeline_->submit(std::move(job));
  } else {
    pool_->submit(std::move(job));
  }
  return true;
}

void Server::run_request(Frame request, Nanos stall, Completion seed) {
  if (stall > 0) {
    // An injected stall sleeps right here on the store backend — on the
    // coordinator in sharded mode that delays everything behind it, which
    // is exactly the head-of-line pathology the chaos runs want to model.
    std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
  }
  // Everything since the admission stamp was time on the store queue. An
  // injected stall is deliberately left in the queue stage: it is
  // scheduling delay, not store work.
  seed.span.stamp(obs::SvcStage::kQueue);
  if (std::chrono::steady_clock::now() >= seed.deadline) {
    // The deadline lapsed while the request sat on the queue: the client
    // has stopped waiting, so executing now would burn store time for a
    // response nobody reads. Shed without touching the store.
    seed.response = Frame{request.op, Status::kDeadlineExceeded,
                          request.request_id, {}};
    deadline_exceeded_total_.fetch_add(1, std::memory_order_relaxed);
    if (metric_.resolved && obs::enabled()) {
      metric_.deadline_exceeded->inc();
    }
    seed.span.stamp(obs::SvcStage::kStoreExec);
    post_completion(std::move(seed));
    return;
  }
  // Drop any WAL time a previous request on this thread left behind (e.g.
  // its span was inactive), then carve this request's WAL append+fsync out
  // of the store-exec stage. Under group commit the fsync happens on the
  // committer thread, so the carve-out shrinks toward the append cost and
  // the wait shows up (truthfully) as completion-stage time.
  obs::span_tls_take(obs::SvcStage::kWalFsync);
  seed.response = execute(request);
  const std::uint64_t wal_ns = obs::span_tls_take(obs::SvcStage::kWalFsync);
  seed.span.stamp(obs::SvcStage::kStoreExec);
  seed.span.carve(obs::SvcStage::kStoreExec, obs::SvcStage::kWalFsync,
                  wal_ns);

  // Group-commit gate: a journaled mutation is acked only once its WAL
  // records are fsynced. appended_seq() read here runs under the store's
  // serialization domain, so it is >= every seq this op appended; gating on
  // it can only delay the ack, never release it early.
  auto* gc = group_commit_.load(std::memory_order_acquire);
  const bool journaled =
      (request.op == Op::kPut || request.op == Op::kDelete) &&
      seed.response.status == Status::kOk;
  if (gc != nullptr && journaled) {
    durable_gated_total_.fetch_add(1, std::memory_order_relaxed);
    if (metric_.resolved && obs::enabled()) metric_.durable_gated->inc();
    const std::uint64_t seq = gc->appended_seq();
    auto held = std::make_shared<Completion>(std::move(seed));
    gc->when_durable(seq, [this, held]() mutable {
      post_completion(std::move(*held));
    });
    return;
  }
  post_completion(std::move(seed));
}

Frame Server::control_response(const Frame& request) {
  Frame resp{request.op, Status::kOk, request.request_id, {}};
  switch (request.op) {
    case Op::kPing:
      break;
    case Op::kStats: {
      const std::string body = stats_json();
      resp.payload.assign(body.begin(), body.end());
      break;
    }
    case Op::kMetrics: {
      obs::sync_trace_metrics();
      const std::string body = obs::render_prometheus(obs::metrics());
      resp.payload.assign(body.begin(), body.end());
      break;
    }
    case Op::kHealth: {
      // Answered inline in every serving state (including kRecovering and
      // kDraining): readiness probes must get a truthful answer precisely
      // when data ops are being shed.
      const std::string body = health_json();
      resp.payload.assign(body.begin(), body.end());
      break;
    }
    case Op::kPlace:
    case Op::kPeerHealth: {
      // Membership peer ops (docs/DISTRIBUTED.md): answered inline in every
      // serving state — heartbeats must keep flowing while a node recovers
      // or drains, exactly like HEALTH. Without an installed handler (a
      // single-node server) both are malformed requests.
      PeerHandler* handler = peer_handler_.load(std::memory_order_acquire);
      bool ok = false;
      if (handler != nullptr) {
        ok = request.op == Op::kPlace
                 ? handler->place(request.payload, resp.payload)
                 : handler->peer_health(request.payload, resp.payload);
      }
      if (!ok) {
        resp.status = Status::kBadRequest;
        resp.payload.clear();
      }
      break;
    }
    default:
      resp.status = Status::kBadRequest;
      break;
  }
  return resp;
}

Frame Server::execute(const Frame& request) {
  Frame resp{request.op, Status::kOk, request.request_id, {}};
  // kMutex: every store touch happens under store_mutex_. kSharded: this
  // already runs on the pipeline coordinator — the store's single logical
  // owner — so no lock exists at all.
  const bool mutex_mode = pipeline_ == nullptr;
  try {
    switch (request.op) {
      case Op::kGet: {
        std::string key;
        if (!decode_key_body(request.payload, key)) {
          resp.status = Status::kBadRequest;
          break;
        }
        std::unique_lock<std::mutex> lock(store_mutex_, std::defer_lock);
        if (mutex_mode) lock.lock();
        if (!system_.client().contains(key)) {
          resp.status = Status::kNotFound;
          break;
        }
        resp.payload = system_.client().get(key, system_.current_epoch());
        break;
      }
      case Op::kPut: {
        PutBody body;
        if (!decode_put_body(request.payload, body)) {
          resp.status = Status::kBadRequest;
          break;
        }
        std::unique_lock<std::mutex> lock(store_mutex_, std::defer_lock);
        if (mutex_mode) lock.lock();
        system_.client().put(
            body.key,
            std::span<const std::uint8_t>(body.value.data(),
                                          body.value.size()),
            system_.current_epoch());
        maybe_tick_epoch();
        break;
      }
      case Op::kDelete: {
        std::string key;
        if (!decode_key_body(request.payload, key)) {
          resp.status = Status::kBadRequest;
          break;
        }
        std::unique_lock<std::mutex> lock(store_mutex_, std::defer_lock);
        if (mutex_mode) lock.lock();
        resp.status = system_.client().remove(key) ? Status::kOk
                                                   : Status::kNotFound;
        break;
      }
      case Op::kDigest: {
        // Whole-cluster state fingerprint, taken as a consistent
        // point-in-time value. Crash-recovery CI compares this across a
        // kill -9 restart, and the equivalence suite compares it across
        // store backends — in sharded mode the bypass window's drain fence
        // is what makes the snapshot consistent.
        const auto compute = [&] {
          const std::uint64_t digest = fault::cluster_digest(system_.store());
          char hex[17];
          std::snprintf(hex, sizeof(hex), "%016llx",
                        static_cast<unsigned long long>(digest));
          resp.payload.assign(hex, hex + 16);
        };
        if (pipeline_) {
          pipeline_->bypass_inline(compute);
        } else {
          std::lock_guard lock(store_mutex_);
          compute();
        }
        break;
      }
      case Op::kReplicate: {
        // A router-fanned replica write: like kPut, but the value must be a
        // well-formed versioned replica blob and it is applied NEWEST-WINS.
        // Same-key fan-outs from the router race unserialized across nodes,
        // so without the version gate two concurrent PUTs could leave one
        // node on v1 and another on v2 forever — and reads only mask that
        // while the node holding v2 is live. The whole case runs under the
        // store's serialization domain (store_mutex_ or the pipeline
        // coordinator), so the read-compare-put is atomic.
        ReplicateBody body;
        if (!decode_replicate_body(request.payload, body)) {
          resp.status = Status::kBadRequest;
          break;
        }
        ReplicaBlob incoming;
        if (!decode_replica_blob(body.value, incoming)) {
          resp.status = Status::kBadRequest;
          break;
        }
        std::unique_lock<std::mutex> lock(store_mutex_, std::defer_lock);
        if (mutex_mode) lock.lock();
        if (system_.client().contains(body.key)) {
          ReplicaBlob stored;
          if (decode_replica_blob(
                  system_.client().get(body.key, system_.current_epoch()),
                  stored) &&
              stored.version >= incoming.version) {
            break;  // already at this version or newer: ack without writing
          }
        }
        system_.client().put(
            body.key,
            std::span<const std::uint8_t>(body.value.data(),
                                          body.value.size()),
            system_.current_epoch());
        maybe_tick_epoch();
        break;
      }
      case Op::kStripeWrite: {
        // One erasure-coded shard of a cross-node stripe: stored as a
        // self-describing blob (ShardMeta + shard bytes) under the internal
        // shard key, through the ordinary put path so the WAL, checkpoints,
        // and DIGEST all cover shards with zero extra machinery.
        StripeShardBody body;
        if (!decode_stripe_shard_body(request.payload, body)) {
          resp.status = Status::kBadRequest;
          break;
        }
        std::vector<std::uint8_t> blob;
        encode_shard_blob(body.meta,
                          std::span<const std::uint8_t>(body.shard.data(),
                                                        body.shard.size()),
                          blob);
        const std::string skey = shard_key(body.key, body.meta.index);
        std::unique_lock<std::mutex> lock(store_mutex_, std::defer_lock);
        if (mutex_mode) lock.lock();
        // Newest-wins, for the same reason as kReplicate: racing same-key
        // fan-outs must converge on the highest version at every node.
        if (system_.client().contains(skey)) {
          ShardMeta stored_meta;
          std::vector<std::uint8_t> stored_shard;
          if (decode_shard_blob(
                  system_.client().get(skey, system_.current_epoch()),
                  stored_meta, stored_shard) &&
              stored_meta.version >= body.meta.version) {
            break;  // already at this version or newer: ack without writing
          }
        }
        system_.client().put(
            skey, std::span<const std::uint8_t>(blob.data(), blob.size()),
            system_.current_epoch());
        maybe_tick_epoch();
        break;
      }
      case Op::kWearReport: {
        if (!request.payload.empty()) {
          resp.status = Status::kBadRequest;
          break;
        }
        // Consistent point-in-time wear snapshot: like kDigest, the erase
        // counters live in FTL state that shard threads mutate, so sharded
        // mode reads them inside a drain-fenced bypass window.
        const auto compute = [&] {
          WearReportBody body;
          body.node_id = config_.node_id;
          body.epoch = system_.current_epoch();
          body.server_erases = system_.cluster().erase_counts();
          for (const std::uint64_t e : body.server_erases) {
            body.total_erases += e;
          }
          encode_wear_report_body(body, resp.payload);
        };
        if (pipeline_) {
          pipeline_->bypass_inline(compute);
        } else {
          std::lock_guard lock(store_mutex_);
          compute();
        }
        break;
      }
      default:
        resp.status = Status::kBadRequest;
        break;
    }
  } catch (const TransientFault& fault) {
    resp.status = Status::kRetryLater;
    const std::string what = fault.what();
    resp.payload.assign(what.begin(), what.end());
  } catch (const std::out_of_range&) {
    resp.status = Status::kNotFound;
    resp.payload.clear();
  } catch (const std::exception& error) {
    resp.status = Status::kError;
    const std::string what = error.what();
    resp.payload.assign(what.begin(), what.end());
  }
  return resp;
}

void Server::maybe_tick_epoch() {
  if (config_.epoch_every_ops == 0) return;
  if (++ops_since_epoch_ < config_.epoch_every_ops) return;
  ops_since_epoch_ = 0;
  const auto tick = [this] {
    system_.advance_time(system_.now() + system_.config().epoch_length);
    epoch_cache_.store(system_.current_epoch(), std::memory_order_relaxed);
  };
  if (pipeline_) {
    // Inline bypass window, not a queued job: the tick must land exactly
    // after the Nth data op (as it does under the mutex), not drift behind
    // ops that were already queued.
    pipeline_->bypass_inline(tick);
  } else {
    tick();
  }
}

void Server::post_completion(Completion&& c) {
  Reactor& r = *c.reactor;
  bool was_empty = false;
  {
    std::lock_guard lock(r.completion_mutex);
    was_empty = r.completions.empty();
    r.completions.push_back(std::move(c));
  }
  // Batched wakeup: only the empty→non-empty transition needs the eventfd —
  // the reactor drains the whole queue per wake, so later posts ride along.
  if (was_empty) {
    const int fd = r.wake_fd;
    if (fd >= 0) {
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t w = ::write(fd, &one, sizeof(one));
    }
  }
}

void Server::drain_completions(Reactor& r) {
  std::deque<Completion> batch;
  {
    std::lock_guard lock(r.completion_mutex);
    batch.swap(r.completions);
  }
  const auto now = std::chrono::steady_clock::now();
  for (Completion& c : batch) {
    admission_.release();
    if (c.session->inflight > 0) c.session->inflight -= 1;
    responses_total_.fetch_add(1, std::memory_order_relaxed);
    note_response(c.op, elapsed_ns(c.admitted_at, now));
    // Time from the store's last stamp to here sat in the completion queue
    // waiting for the IO thread (and, under group commit, for the fsync).
    c.span.stamp(obs::SvcStage::kCompletion);
    auto& sink = obs::trace();
    if (sink.accepts(obs::TraceType::kSvcRequest)) {
      obs::TraceEvent e;
      e.epoch = epoch_cache_.load(std::memory_order_relaxed);
      e.type = obs::TraceType::kSvcRequest;
      e.server = c.session->id();
      e.from = op_name(c.op);
      e.to = status_name(c.response.status);
      e.a = c.request_bytes;
      e.value = static_cast<double>(elapsed_ns(c.admitted_at, now));
      e.has_value = true;
      sink.record(std::move(e));
    }
    if (!c.session->closed()) {
      c.session->enqueue(c.response);
      pump_out(r, c.session);
      // Same cap handle_frame enforces on control responses: a client
      // pipelining data ops without reading its socket must not buffer
      // unbounded output (credits x max_payload can far exceed the cap).
      if (!c.session->closed() &&
          c.session->pending_bytes() > kMaxSessionOutBytes) {
        close_session(r, c.session);
      }
    }
    c.span.stamp(obs::SvcStage::kFlush);
    finalize_span(c);
    if (!c.session->closed() && c.session->peer_gone &&
        c.session->inflight == 0 && !c.session->pending()) {
      close_session(r, c.session);
    }
  }
  if (!batch.empty() && metric_.resolved && obs::enabled()) {
    metric_.inflight->set(static_cast<double>(admission_.inflight()));
  }
}

void Server::pump_out(Reactor& r, const std::shared_ptr<Session>& session) {
  if (session->closed()) return;
  std::uint64_t written = 0;
  const Session::IoResult res = session->flush(&written);
  if (written > 0) {
    bytes_written_total_.fetch_add(written, std::memory_order_relaxed);
    if (metric_.resolved && obs::enabled()) {
      metric_.bytes_written->inc(written);
    }
  }
  if (res == Session::IoResult::kError) {
    close_session(r, session);
    return;
  }
  update_epoll(r, *session);
}

void Server::update_epoll(Reactor& r, Session& session) {
  const bool want = session.pending();
  if (want == session.want_write || session.closed()) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = session.fd();
  if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, session.fd(), &ev) == 0) {
    session.want_write = want;
  }
}

void Server::close_session(Reactor& r, std::shared_ptr<Session> session) {
  const int fd = session->fd();
  if (fd < 0) return;
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  r.sessions.erase(fd);
  // Park the fd instead of closing it: the current epoll batch may still
  // hold queued events for this fd number, and closing now would let a
  // same-batch accept4 reuse the number, misrouting those stale events
  // (e.g. EPOLLHUP) to the fresh session. flush_deferred_closes() runs once
  // the batch is fully dispatched.
  r.deferred_close_fds.push_back(session->release_fd());
  sessions_open_.fetch_sub(1, std::memory_order_relaxed);
  sessions_closed_total_.fetch_add(1, std::memory_order_relaxed);
  if (metric_.resolved && obs::enabled()) metric_.sessions_closed->inc();
  auto& sink = obs::trace();
  if (sink.accepts(obs::TraceType::kSvcSessionClose)) {
    obs::TraceEvent e;
    e.epoch = epoch_cache_.load(std::memory_order_relaxed);
    e.type = obs::TraceType::kSvcSessionClose;
    e.server = session->id();
    sink.record(std::move(e));
  }
}

void Server::flush_deferred_closes(Reactor& r) {
  for (const int fd : r.deferred_close_fds) {
    if (fd >= 0) ::close(fd);
  }
  r.deferred_close_fds.clear();
}

void Server::reap_idle(Reactor& r, std::chrono::steady_clock::time_point now) {
  std::vector<std::shared_ptr<Session>> victims;
  for (const auto& [fd, session] : r.sessions) {
    if (session->inflight > 0 || session->pending()) continue;
    if (elapsed_ns(session->last_activity, now) > config_.idle_timeout) {
      victims.push_back(session);
    }
  }
  for (const auto& session : victims) close_session(r, session);
}

std::string Server::stats_json() const {
  const ServerStats s = stats();
  std::string out;
  out.reserve(256);
  const auto field = [&out](const char* key, std::uint64_t v, bool first =
                                                                  false) {
    if (!first) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(v);
  };
  out += '{';
  field("accepted_total", s.accepted_total, true);
  field("sessions_open", s.sessions_open);
  field("sessions_closed_total", s.sessions_closed_total);
  field("requests_total", s.requests_total);
  field("responses_total", s.responses_total);
  field("shed_total", s.shed_total);
  field("protocol_errors_total", s.protocol_errors_total);
  field("faults_injected_total", s.faults_injected_total);
  field("bytes_read_total", s.bytes_read_total);
  field("bytes_written_total", s.bytes_written_total);
  field("inflight", s.inflight);
  field("slow_requests_total", s.slow_requests_total);
  field("trace_dropped", s.trace_dropped);
  field("shed_session_total", admission_.shed_session_total());
  field("shed_global_total", admission_.shed_global_total());
  field("shed_deadline_total", admission_.shed_deadline_total());
  field("deadline_exceeded_total", s.deadline_exceeded_total);
  out += ",\"store_mode\":\"";
  out += store_mode_name(config_.store_mode);
  out += '"';
  field("node_id", config_.node_id);
  field("reactors", reactor_count_.load(std::memory_order_relaxed));
  field("pipeline_jobs_total", s.pipeline_jobs_total);
  field("pipeline_drains_total", s.pipeline_drains_total);
  field("pipeline_bypass_windows_total", s.pipeline_bypass_windows_total);
  field("durable_gated_total", s.durable_gated_total);
  out += ",\"state\":\"";
  out += serving_state_name(s.state);
  out += '"';
  out += ",\"uptime_seconds\":";
  out += json_number(s.uptime_seconds);
  out += ",\"draining\":";
  out += s.state == ServingState::kDraining ? "true" : "false";
  const RecoveryInfo rec = recovery_info();
  out += ",\"recovered\":";
  out += rec.recovered ? "true" : "false";
  field("recoveries_total", rec.recoveries_total);
  field("recovery_replayed_records", rec.replayed_records);
  field("recovery_checkpoint_seq", rec.checkpoint_seq);
  field("last_recovery_unix_ms", rec.last_recovery_unix_ms);
  out += ",\"last_recovery_seconds\":";
  out += json_number(rec.last_recovery_seconds);
  if (obs::enabled()) {
    // Durability counters, surfaced over the wire so the chaos harness and
    // operators can watch WAL progress without scraping the metrics op. The
    // names/help strings must match the durability registrations exactly —
    // obs::Registry::counter() is get-or-create.
    auto& reg = obs::metrics();
    field("wal_records_total",
          reg.counter("chameleon_wal_records_total", {},
                      "WAL records appended since process start")
              .value());
    field("wal_bytes_appended",
          static_cast<std::uint64_t>(
              reg.gauge("chameleon_wal_bytes_appended", {},
                        "WAL bytes appended since process start")
                  .value()));
    field("wal_fsyncs",
          static_cast<std::uint64_t>(
              reg.gauge("chameleon_wal_fsyncs", {},
                        "WAL fsync calls since process start")
                  .value()));
    field("wal_group_commits_total",
          reg.counter("chameleon_wal_group_commits_total", {},
                      "Group-commit fsync batches issued")
              .value());
    field("wal_group_commit_acks_total",
          reg.counter("chameleon_wal_group_commit_acks_total", {},
                      "Acks released by group-commit fsync batches")
              .value());
    field("recovery_replayed_records_total",
          reg.counter("chameleon_recovery_replayed_records_total", {},
                      "WAL records re-applied during crash recovery")
              .value());
    out += ",\"recovery_duration_seconds\":";
    out += json_number(
        reg.gauge("chameleon_recovery_duration_seconds", {},
                  "Wall-clock duration of the last crash recovery")
            .value());
  }
  out += '}';
  return out;
}

std::string Server::health_json() const {
  const RecoveryInfo rec = recovery_info();
  const ServingState st = state();
  std::string out;
  out.reserve(192);
  out += "{\"state\":\"";
  out += serving_state_name(st);
  out += "\",\"serving\":";
  out += st == ServingState::kServing ? "true" : "false";
  out += ",\"store_mode\":\"";
  out += store_mode_name(config_.store_mode);
  out += '"';
  out += ",\"node_id\":";
  out += std::to_string(config_.node_id);
  out += ",\"uptime_seconds\":";
  out += json_number(
      start_time_.time_since_epoch().count() == 0
          ? 0.0
          : static_cast<double>(
                elapsed_ns(start_time_, std::chrono::steady_clock::now())) /
                1e9);
  out += ",\"recovered\":";
  out += rec.recovered ? "true" : "false";
  out += ",\"recoveries_total\":";
  out += std::to_string(rec.recoveries_total);
  out += ",\"recovery_replayed_records\":";
  out += std::to_string(rec.replayed_records);
  out += ",\"recovery_checkpoint_seq\":";
  out += std::to_string(rec.checkpoint_seq);
  out += ",\"last_recovery_unix_ms\":";
  out += std::to_string(rec.last_recovery_unix_ms);
  out += ",\"last_recovery_seconds\":";
  out += json_number(rec.last_recovery_seconds);
  out += '}';
  return out;
}

void Server::note_request(Op op) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  if (metric_.resolved && obs::enabled()) {
    metric_.requests[static_cast<std::size_t>(op)]->inc();
  }
}

void Server::note_response(Op op, Nanos latency) {
  if (metric_.resolved && obs::enabled()) {
    metric_.latency[static_cast<std::size_t>(op)]->observe(
        static_cast<double>(latency));
  }
}

void Server::finalize_span(const Completion& c) {
  if (!c.span.active()) return;
  const std::size_t op = static_cast<std::size_t>(c.op);
  if (metric_.resolved && obs::enabled() && metric_.stage[op][0] != nullptr) {
    for (std::size_t s = 0;
         s < static_cast<std::size_t>(obs::SvcStage::kCount); ++s) {
      metric_.stage[op][s]->observe(
          static_cast<double>(c.span.ns(static_cast<obs::SvcStage>(s))) / 1e9);
    }
  }
  const std::uint64_t total = c.span.total_ns();
  const bool slow = config_.slow.threshold > 0 &&
                    total >= static_cast<std::uint64_t>(config_.slow.threshold);
  const bool sampled = obs::span_sampled(
      config_.slow.seed, config_.slow.sample_every, c.request_id);
  if (!slow && !sampled) return;
  slow_requests_total_.fetch_add(1, std::memory_order_relaxed);
  auto& sink = obs::trace();
  if (!sink.accepts(obs::TraceType::kSvcSlowRequest)) return;
  obs::TraceEvent e;
  e.epoch = epoch_cache_.load(std::memory_order_relaxed);
  e.type = obs::TraceType::kSvcSlowRequest;
  e.server = c.session->id();
  e.from = op_name(c.op);
  e.to = slow ? "threshold" : "sample";
  e.a = c.request_id;
  e.b = c.request_bytes;
  e.value = static_cast<double>(total);
  e.has_value = true;
  e.detail = c.span.stages_json();
  sink.record(std::move(e));
}

void Server::note_fault(const char* kind) {
  if (!obs::enabled()) return;
  auto& counter = obs::metrics().counter("chameleon_fault_injected_total",
                                         {{"kind", kind}},
                                         "Injected faults fired, by kind");
  counter.inc();
}

// --- signal-triggered drain --------------------------------------------------

namespace {
std::atomic<Server*> g_drain_server{nullptr};

extern "C" void drain_signal_handler(int) {
  Server* server = g_drain_server.load(std::memory_order_acquire);
  if (server != nullptr) server->request_stop();
}
}  // namespace

void drain_on_signals(Server* server, std::initializer_list<int> signals) {
  g_drain_server.store(server, std::memory_order_release);
  struct sigaction action{};
  if (server != nullptr) {
    action.sa_handler = drain_signal_handler;
    action.sa_flags = SA_RESTART;
  } else {
    action.sa_handler = SIG_DFL;
  }
  sigemptyset(&action.sa_mask);
  for (const int sig : signals) {
    ::sigaction(sig, &action, nullptr);
  }
}

}  // namespace chameleon::svc
