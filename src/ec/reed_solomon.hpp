// Systematic Reed-Solomon codec over GF(2^8) built from a Cauchy generator
// matrix. RS(n, k) in the paper's notation: n total shards, k data shards,
// m = n - k parity shards. The paper's configuration is RS(6,4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ec/matrix.hpp"

namespace chameleon {
class ThreadPool;
}

namespace chameleon::ec {

class ReedSolomon {
 public:
  /// n = total shards (data + parity), k = data shards. Requires k < n <= 255.
  ReedSolomon(std::size_t n, std::size_t k);

  std::size_t total_shards() const { return n_; }
  std::size_t data_shards() const { return k_; }
  std::size_t parity_shards() const { return n_ - k_; }

  /// Compute parity shards from data shards. All shards must share one size.
  /// data.size() == k, parity.size() == m; parity buffers are overwritten.
  /// A non-null `pool` chunks the shard byte ranges across it with
  /// parallel_for; the output bytes are identical to the serial path (each
  /// output byte is an independent GF(2^8) dot product).
  void encode(const std::vector<std::vector<std::uint8_t>>& data,
              std::vector<std::vector<std::uint8_t>>& parity,
              ThreadPool* pool = nullptr) const;

  /// Convenience: encode a contiguous payload. Pads the tail shard with
  /// zeroes; returns all n shards (data first, then parity).
  std::vector<std::vector<std::uint8_t>> encode_object(
      const std::vector<std::uint8_t>& payload,
      ThreadPool* pool = nullptr) const;

  /// Reconstruct the original data shards from any >= k survivors.
  /// `shards[i]` is shard i's bytes or std::nullopt if lost. On success the
  /// returned vector holds the k data shards. Throws std::runtime_error if
  /// fewer than k shards survive. `pool` parallelizes the byte ranges as in
  /// encode(); bit-identical output either way.
  std::vector<std::vector<std::uint8_t>> reconstruct_data(
      const std::vector<std::optional<std::vector<std::uint8_t>>>& shards,
      ThreadPool* pool = nullptr) const;

  /// Reassemble a payload of `payload_bytes` from data shards.
  static std::vector<std::uint8_t> join(
      const std::vector<std::vector<std::uint8_t>>& data,
      std::size_t payload_bytes);

  /// Shard size for a payload of `bytes` (ceil division by k).
  std::size_t shard_size(std::size_t bytes) const {
    return (bytes + k_ - 1) / k_;
  }

  /// Verify that the given full shard set is consistent (parity matches).
  bool verify(const std::vector<std::vector<std::uint8_t>>& shards) const;

 private:
  std::size_t n_;
  std::size_t k_;
  /// Full generator: k identity rows followed by m Cauchy parity rows.
  GfMatrix generator_;
};

}  // namespace chameleon::ec
