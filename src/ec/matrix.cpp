#include "ec/matrix.hpp"

#include <stdexcept>

#include "ec/gf256.hpp"

namespace chameleon::ec {

GfMatrix::GfMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("GfMatrix: zero dimension");
  }
}

GfMatrix GfMatrix::identity(std::size_t n) {
  GfMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::cauchy(std::size_t rows, std::size_t cols) {
  if (rows + cols > 256) {
    throw std::invalid_argument("GfMatrix::cauchy: rows + cols > 256");
  }
  const auto& gf = Gf256::instance();
  GfMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const auto xi = static_cast<std::uint8_t>(i + cols);
      const auto yj = static_cast<std::uint8_t>(j);
      m.at(i, j) = gf.inv(Gf256::add(xi, yj));
    }
  }
  return m;
}

GfMatrix GfMatrix::multiply(const GfMatrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("GfMatrix::multiply: dimension mismatch");
  }
  const auto& gf = Gf256::instance();
  GfMatrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) = Gf256::add(out.at(i, j), gf.mul(a, other.at(k, j)));
      }
    }
  }
  return out;
}

GfMatrix GfMatrix::inverted() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("GfMatrix::inverted: not square");
  }
  const auto& gf = Gf256::instance();
  const std::size_t n = rows_;
  GfMatrix work(*this);
  GfMatrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot row at or below `col`.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) throw std::domain_error("GfMatrix::inverted: singular");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(work.at(pivot, j), work.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    // Scale pivot row to 1.
    const std::uint8_t scale = gf.inv(work.at(col, col));
    for (std::size_t j = 0; j < n; ++j) {
      work.at(col, j) = gf.mul(work.at(col, j), scale);
      inv.at(col, j) = gf.mul(inv.at(col, j), scale);
    }
    // Eliminate all other rows.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        work.at(r, j) =
            Gf256::add(work.at(r, j), gf.mul(factor, work.at(col, j)));
        inv.at(r, j) =
            Gf256::add(inv.at(r, j), gf.mul(factor, inv.at(col, j)));
      }
    }
  }
  return inv;
}

GfMatrix GfMatrix::select_rows(const std::vector<std::size_t>& indices) const {
  GfMatrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) {
      throw std::out_of_range("GfMatrix::select_rows: index out of range");
    }
    for (std::size_t j = 0; j < cols_; ++j) {
      out.at(i, j) = at(indices[i], j);
    }
  }
  return out;
}

}  // namespace chameleon::ec
