// Object <-> stripe geometry helpers shared by the KV redundancy engine and
// the simulator's metadata-only fast path. The byte-level split/join lives in
// ReedSolomon; this layer answers "how many pages does shard i of an object
// of B bytes occupy on its server?" without touching payload bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace chameleon::ec {

struct StripeGeometry {
  std::size_t total_shards;   ///< n (6 in RS(6,4))
  std::size_t data_shards;    ///< k (4 in RS(6,4))
  std::uint32_t page_size;    ///< flash page in bytes

  std::size_t parity_shards() const { return total_shards - data_shards; }

  /// Bytes per shard for an object of `object_bytes` (all shards equal size,
  /// tail zero-padded).
  std::uint64_t shard_bytes(std::uint64_t object_bytes) const {
    const std::uint64_t k = data_shards;
    const std::uint64_t b = (object_bytes + k - 1) / k;
    return b == 0 ? 1 : b;
  }

  /// Flash pages per shard.
  std::uint32_t shard_pages(std::uint64_t object_bytes) const {
    const std::uint64_t b = shard_bytes(object_bytes);
    return static_cast<std::uint32_t>((b + page_size - 1) / page_size);
  }

  /// Total pages across all n shards (what EC storage actually costs).
  std::uint64_t total_pages(std::uint64_t object_bytes) const {
    return static_cast<std::uint64_t>(shard_pages(object_bytes)) * total_shards;
  }

  /// Storage overhead factor n/k (1.5 for RS(6,4)).
  double storage_factor() const {
    return static_cast<double>(total_shards) / static_cast<double>(data_shards);
  }
};

/// Replication geometry for symmetry with StripeGeometry.
struct ReplicaGeometry {
  std::size_t replicas;    ///< r (3 in the paper)
  std::uint32_t page_size;

  std::uint32_t replica_pages(std::uint64_t object_bytes) const {
    const std::uint64_t p = (object_bytes + page_size - 1) / page_size;
    return static_cast<std::uint32_t>(p == 0 ? 1 : p);
  }

  std::uint64_t total_pages(std::uint64_t object_bytes) const {
    return static_cast<std::uint64_t>(replica_pages(object_bytes)) * replicas;
  }

  double storage_factor() const { return static_cast<double>(replicas); }
};

}  // namespace chameleon::ec
