// Dense matrices over GF(2^8) with Gauss-Jordan inversion; used to build and
// invert Reed-Solomon generator submatrices during decode.
#pragma once

#include <cstdint>
#include <vector>

namespace chameleon::ec {

class GfMatrix {
 public:
  GfMatrix(std::size_t rows, std::size_t cols);

  static GfMatrix identity(std::size_t n);
  /// Cauchy matrix rows x cols: a[i][j] = 1 / (x_i + y_j) with
  /// x_i = i + cols, y_j = j. Any square submatrix is invertible, which is
  /// what makes it a valid MDS code generator.
  static GfMatrix cauchy(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::uint8_t& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  std::uint8_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  const std::uint8_t* row(std::size_t r) const { return &data_[r * cols_]; }

  GfMatrix multiply(const GfMatrix& other) const;

  /// Gauss-Jordan inverse. Throws std::domain_error if singular.
  GfMatrix inverted() const;

  /// Select a subset of rows (used to build the decode matrix from the
  /// surviving shard rows).
  GfMatrix select_rows(const std::vector<std::size_t>& indices) const;

  bool operator==(const GfMatrix& other) const = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint8_t> data_;
};

}  // namespace chameleon::ec
