#include "ec/gf256.hpp"

#include <stdexcept>

namespace chameleon::ec {

namespace {
constexpr unsigned kPrimitivePoly = 0x11D;  // x^8+x^4+x^3+x^2+1
}

Gf256::Gf256() {
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPrimitivePoly;
  }
  for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
  log_[0] = 0;  // undefined; guarded by callers

  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      mul_table_[a * 256 + b] =
          (a == 0 || b == 0)
              ? 0
              : exp_[static_cast<unsigned>(log_[a]) + log_[b]];
    }
  }
}

const Gf256& Gf256::instance() {
  static const Gf256 gf;
  return gf;
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) const {
  if (b == 0) throw std::domain_error("Gf256::div by zero");
  if (a == 0) return 0;
  return exp_[static_cast<unsigned>(255 + log_[a] - log_[b])];
}

std::uint8_t Gf256::inv(std::uint8_t a) const {
  if (a == 0) throw std::domain_error("Gf256::inv of zero");
  return exp_[255 - log_[a]];
}

std::uint8_t Gf256::pow(std::uint8_t a, unsigned e) const {
  if (a == 0) return e == 0 ? 1 : 0;
  const unsigned l = (static_cast<unsigned>(log_[a]) * e) % 255;
  return exp_[l];
}

void Gf256::mul_add(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst) const {
  if (c == 0) return;
  const std::uint8_t* row = &mul_table_[static_cast<std::size_t>(c) * 256];
  const std::size_t n = src.size() < dst.size() ? src.size() : dst.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void Gf256::mul_into(std::uint8_t c, std::span<const std::uint8_t> src,
                     std::span<std::uint8_t> dst) const {
  const std::uint8_t* row = &mul_table_[static_cast<std::size_t>(c) * 256];
  const std::size_t n = src.size() < dst.size() ? src.size() : dst.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

}  // namespace chameleon::ec
