// GF(2^8) arithmetic over the AES/ISA-L polynomial x^8+x^4+x^3+x^2+1 (0x1D),
// implemented with log/exp tables. This is the arithmetic substrate for the
// Reed-Solomon codec that stands in for Intel ISA-L in the paper's setup.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace chameleon::ec {

class Gf256 {
 public:
  /// Tables are built once; the instance is immutable and thread-safe.
  static const Gf256& instance();

  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  std::uint8_t div(std::uint8_t a, std::uint8_t b) const;

  std::uint8_t inv(std::uint8_t a) const;

  std::uint8_t pow(std::uint8_t a, unsigned e) const;

  static std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return a ^ b;  // addition == subtraction == XOR in GF(2^8)
  }

  /// dst[i] ^= c * src[i] — the inner loop of RS encode/decode.
  void mul_add(std::uint8_t c, std::span<const std::uint8_t> src,
               std::span<std::uint8_t> dst) const;

  /// dst[i] = c * src[i].
  void mul_into(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) const;

  std::uint8_t exp_table(unsigned i) const { return exp_[i % 255]; }
  std::uint8_t log_table(std::uint8_t a) const { return log_[a]; }

 private:
  Gf256();

  // exp_ is doubled so mul can skip the mod-255 reduction.
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint8_t, 256> log_{};
  // 256 x 256 product table for the byte-stream kernels.
  std::array<std::uint8_t, 256 * 256> mul_table_{};
};

}  // namespace chameleon::ec
