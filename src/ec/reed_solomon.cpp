#include "ec/reed_solomon.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "ec/gf256.hpp"

namespace chameleon::ec {

namespace {

/// Shards smaller than this encode serially — the mul_add kernel crosses
/// memory bandwidth well before thread fan-out pays for itself.
constexpr std::size_t kParallelShardBytes = 64 * 1024;
/// Byte-range granule for parallel_for chunking.
constexpr std::size_t kChunkBytes = 16 * 1024;

bool use_pool(const ThreadPool* pool, std::size_t shard_bytes) {
  return pool != nullptr && pool->worker_count() > 1 &&
         shard_bytes >= kParallelShardBytes;
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k)
    : n_(n), k_(k), generator_(n == 0 || k == 0 ? 1 : n, k == 0 ? 1 : k) {
  if (k == 0 || n <= k || n > 255) {
    throw std::invalid_argument("ReedSolomon: need 0 < k < n <= 255");
  }
  // Systematic generator: top k rows identity, bottom m rows Cauchy.
  const GfMatrix parity_rows = GfMatrix::cauchy(n - k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      generator_.at(i, j) = (i == j) ? 1 : 0;
    }
  }
  for (std::size_t i = 0; i < n - k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      generator_.at(k + i, j) = parity_rows.at(i, j);
    }
  }
}

void ReedSolomon::encode(
    const std::vector<std::vector<std::uint8_t>>& data,
    std::vector<std::vector<std::uint8_t>>& parity, ThreadPool* pool) const {
  if (data.size() != k_) {
    throw std::invalid_argument("ReedSolomon::encode: expected k data shards");
  }
  if (parity.size() != parity_shards()) {
    throw std::invalid_argument("ReedSolomon::encode: expected m parity shards");
  }
  const std::size_t shard_bytes = data[0].size();
  for (const auto& shard : data) {
    if (shard.size() != shard_bytes) {
      throw std::invalid_argument("ReedSolomon::encode: ragged data shards");
    }
  }
  const auto& gf = Gf256::instance();
  for (auto& shard : parity) shard.assign(shard_bytes, 0);
  // Each parity byte is an independent dot product over the data column, so
  // byte-range chunking cannot change the result: within a chunk the d-loop
  // XOR order is the same as the serial path's.
  const auto encode_range = [&](std::size_t p, std::size_t off,
                                std::size_t len) {
    for (std::size_t d = 0; d < k_; ++d) {
      gf.mul_add(generator_.at(k_ + p, d),
                 std::span(data[d]).subspan(off, len),
                 std::span(parity[p]).subspan(off, len));
    }
  };
  if (!use_pool(pool, shard_bytes)) {
    for (std::size_t p = 0; p < parity.size(); ++p) {
      encode_range(p, 0, shard_bytes);
    }
    return;
  }
  const std::size_t chunks = (shard_bytes + kChunkBytes - 1) / kChunkBytes;
  pool->parallel_for(0, parity.size() * chunks, [&](std::size_t i) {
    const std::size_t p = i / chunks;
    const std::size_t off = (i % chunks) * kChunkBytes;
    encode_range(p, off, std::min(kChunkBytes, shard_bytes - off));
  });
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode_object(
    const std::vector<std::uint8_t>& payload, ThreadPool* pool) const {
  const std::size_t shard_bytes = std::max<std::size_t>(1, shard_size(payload.size()));
  std::vector<std::vector<std::uint8_t>> shards(n_);
  for (std::size_t d = 0; d < k_; ++d) {
    shards[d].assign(shard_bytes, 0);
    const std::size_t offset = d * shard_bytes;
    if (offset < payload.size()) {
      const std::size_t len = std::min(shard_bytes, payload.size() - offset);
      std::copy_n(payload.begin() + static_cast<std::ptrdiff_t>(offset), len,
                  shards[d].begin());
    }
  }
  std::vector<std::vector<std::uint8_t>> data(shards.begin(),
                                              shards.begin() + static_cast<std::ptrdiff_t>(k_));
  std::vector<std::vector<std::uint8_t>> parity(parity_shards());
  encode(data, parity, pool);
  for (std::size_t p = 0; p < parity.size(); ++p) {
    shards[k_ + p] = std::move(parity[p]);
  }
  return shards;
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::reconstruct_data(
    const std::vector<std::optional<std::vector<std::uint8_t>>>& shards,
    ThreadPool* pool) const {
  if (shards.size() != n_) {
    throw std::invalid_argument("ReedSolomon::reconstruct_data: need n slots");
  }
  // Fast path: all data shards present.
  bool all_data = true;
  for (std::size_t d = 0; d < k_; ++d) {
    if (!shards[d].has_value()) {
      all_data = false;
      break;
    }
  }
  if (all_data) {
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(k_);
    for (std::size_t d = 0; d < k_; ++d) out.push_back(*shards[d]);
    return out;
  }

  // Collect the first k surviving shards (any mix of data/parity works).
  std::vector<std::size_t> rows;
  std::vector<const std::vector<std::uint8_t>*> survivors;
  for (std::size_t i = 0; i < n_ && rows.size() < k_; ++i) {
    if (shards[i].has_value()) {
      rows.push_back(i);
      survivors.push_back(&*shards[i]);
    }
  }
  if (rows.size() < k_) {
    throw std::runtime_error(
        "ReedSolomon::reconstruct_data: fewer than k shards survive");
  }
  const std::size_t shard_bytes = survivors[0]->size();
  for (const auto* s : survivors) {
    if (s->size() != shard_bytes) {
      throw std::invalid_argument("ReedSolomon: ragged surviving shards");
    }
  }

  // survivors = G[rows] * data  =>  data = G[rows]^-1 * survivors.
  const GfMatrix decode = generator_.select_rows(rows).inverted();
  const auto& gf = Gf256::instance();
  std::vector<std::vector<std::uint8_t>> data(k_);
  for (auto& shard : data) shard.assign(shard_bytes, 0);
  const auto decode_range = [&](std::size_t d, std::size_t off,
                                std::size_t len) {
    for (std::size_t s = 0; s < k_; ++s) {
      gf.mul_add(decode.at(d, s), std::span(*survivors[s]).subspan(off, len),
                 std::span(data[d]).subspan(off, len));
    }
  };
  if (!use_pool(pool, shard_bytes)) {
    for (std::size_t d = 0; d < k_; ++d) decode_range(d, 0, shard_bytes);
    return data;
  }
  const std::size_t chunks = (shard_bytes + kChunkBytes - 1) / kChunkBytes;
  pool->parallel_for(0, k_ * chunks, [&](std::size_t i) {
    const std::size_t d = i / chunks;
    const std::size_t off = (i % chunks) * kChunkBytes;
    decode_range(d, off, std::min(kChunkBytes, shard_bytes - off));
  });
  return data;
}

std::vector<std::uint8_t> ReedSolomon::join(
    const std::vector<std::vector<std::uint8_t>>& data,
    std::size_t payload_bytes) {
  std::vector<std::uint8_t> out;
  out.reserve(payload_bytes);
  for (const auto& shard : data) {
    for (const std::uint8_t b : shard) {
      if (out.size() == payload_bytes) return out;
      out.push_back(b);
    }
  }
  if (out.size() != payload_bytes) {
    throw std::invalid_argument("ReedSolomon::join: shards shorter than payload");
  }
  return out;
}

bool ReedSolomon::verify(
    const std::vector<std::vector<std::uint8_t>>& shards) const {
  if (shards.size() != n_) return false;
  std::vector<std::vector<std::uint8_t>> data(
      shards.begin(), shards.begin() + static_cast<std::ptrdiff_t>(k_));
  std::vector<std::vector<std::uint8_t>> parity(parity_shards());
  encode(data, parity);
  for (std::size_t p = 0; p < parity.size(); ++p) {
    if (parity[p] != shards[k_ + p]) return false;
  }
  return true;
}

}  // namespace chameleon::ec
